//! Fleet-scale DVFS governance under chaos: a sharded multi-machine
//! simulation where a central governor allocates frequencies to N
//! machines under a global power budget, and every machine degrades
//! gracefully — central → local DEP+BURST → fallback-to-max — when the
//! fleet misbehaves.
//!
//! # Structure
//!
//! The fleet layers on the existing point pipeline twice over:
//!
//! 1. **Characterization** — each shard runs its benchmarks at 1 GHz and
//!    4 GHz through [`ExecCtx::execute_in`] with a per-shard journal
//!    namespace; the memo cache shares the points fleet-wide (they are
//!    the exact points of the golden grid), the checkpoint journal keeps
//!    each shard's resume state independent. From the two points each
//!    machine gets the DEP+BURST decomposition at request granularity:
//!    `s(f) = scaling_s / f_ghz + fixed_s` over [`REQS`] requests.
//! 2. **Round loop** — simulated time advances in [`ROUND_SECS`] rounds.
//!    Per round, the central governor (sequential, pure) batches one
//!    allocation from the telemetry it has; then every shard steps its
//!    machines in parallel on the context's pool ([`ExecCtx::map`]
//!    preserves order, each step is a pure function of its inputs), and
//!    the machines' telemetry is batched back — delayed, staled, or
//!    dropped per the chaos schedule.
//!
//! # Chaos and degradation
//!
//! A seeded [`ChaosSchedule`] (pure function of the chaos config) injects
//! machine crash/restart outages, telemetry dropout, stale harvests,
//! governor↔machine partitions and slow links. Each machine runs a
//! [`DegradationLadder`]; its transitions land in the report, feed the
//! `rejoin-monotonicity` invariant, and explain every SLO/energy number.
//! Crashed rounds are *partial by design*: the machine sheds its traffic
//! and its row says so — the sweep itself never loses a point.
//!
//! # Thermal and power integrity
//!
//! With [`FleetConfig::thermal`] enabled, every machine carries a
//! deterministic RC [`ThermalModel`] (power → temperature with leakage
//! feedback, seeded sensor noise) and a [`ThrottleLadder`]:
//! proactive throttle below the power cap, emergency throttle with a
//! forced V/f floor at T_crit, thermal shutdown plus staggered
//! black-start past T_shutdown. A thermal emergency blocks the
//! degradation ladder's *rejoin* streak but never demotes — heat is not
//! a reachability failure. At the feed, an [`OvershootBreaker`] trips
//! budget-overshooting machines to their floor with staggered release,
//! containing brownout-induced cascades. With `regions > 1` and
//! `hierarchy` on, a root [`HierarchicalGovernor`] splits the effective
//! budget across region aggregators with damped, dead-banded rebalances;
//! regions whose aggregator is up keep allocating autonomously when the
//! root is down, whereas the flat topology loses every machine with it.
//!
//! All of it is pay-for-what-you-use: thermal disabled (the default)
//! draws no randomness, touches no accumulators, and reproduces the
//! pre-thermal fleet byte-for-byte.
//!
//! At zero chaos intensity a fleet of one lusearch machine reproduces the
//! single-machine golden byte-for-byte (the characterization points are
//! the golden points), which is what pins this whole subsystem to the
//! paper pipeline.

use std::collections::BTreeMap;
use std::collections::VecDeque;
use std::f64::consts::TAU;
use std::sync::Arc;

use dacapo_sim::{all_benchmarks, Benchmark};
use dvfs_trace::{Freq, FreqLadder};
use energyx::{
    BreakerConfig, CentralGovernor, DegradationConfig, DegradationLadder, GovernorMode,
    GovernorPolicy, HierarchicalGovernor, LocalGovernor, MachineView, OvershootBreaker,
    PowerModel,
};
use serde::Serialize;
use simx::faults::SplitMix64;
use simx::fleet::{region_of, ChaosConfig, ChaosSchedule, ChaosState, FleetTopology};
use simx::thermal::{CEILING_MARGIN_MC, CEILING_SETTLE_ROUNDS};
use simx::{
    Invariant, InvariantViolation, ThermalConfig, ThermalModel, ThrottleConfig, ThrottleLadder,
    ThrottleStage, ThrottleTransition,
};

use crate::report::TextTable;
use crate::run::{ExecCtx, RunSummary, SimPoint, SweepPlan};

/// Requests one characterization run stands for: per-request service
/// time is the run's execution time over this many requests.
pub const REQS: f64 = 100.0;

/// Simulated seconds per fleet round.
pub const ROUND_SECS: f64 = 1.0;

/// Stream salt of the per-machine traffic draws.
const TRAFFIC_SALT: u64 = 0x0074_7261_6666_6963;

/// Baseline utilization of a machine's max-frequency capacity.
const BASE_UTIL: f64 = 0.6;

/// Relative tolerance on the fleet-power overshoot metric.
const OVERSHOOT_REL_TOL: f64 = 0.05;

/// The whole fleet experiment configuration.
#[derive(Debug, Clone)]
pub struct FleetConfig {
    /// Simulated machines.
    pub machines: usize,
    /// Shards (parallel step granularity and journal namespaces).
    pub shards: usize,
    /// Fleet rounds to simulate.
    pub rounds: usize,
    /// Characterization work scale (1.0 = the paper's full runs).
    pub scale: f64,
    /// Master seed: characterization runs use it directly, per-machine
    /// traffic streams derive from it.
    pub seed: u64,
    /// The chaos schedule configuration (its own seed).
    pub chaos: ChaosConfig,
    /// Central allocation policy under comparison.
    pub policy: GovernorPolicy,
    /// Global fleet power budget, watts.
    pub budget_w: f64,
    /// Latency SLO as a multiple of the unloaded max-frequency service
    /// time (per machine).
    pub slo_factor: f64,
    /// Slowdown bound of the degraded local DEP+BURST governor.
    pub local_slowdown: f64,
    /// Degradation-ladder thresholds.
    pub degradation: DegradationConfig,
    /// Region aggregators the machines are tiled across (contiguously,
    /// like shards). One region ≡ the pre-hierarchy fleet.
    pub regions: usize,
    /// Hierarchical governance: the root splits the budget across region
    /// aggregators and each region allocates its own machines. Off =
    /// one flat central governor whose reachability depends on the root
    /// *and* the machine's region aggregator (single point of failure).
    pub hierarchy: bool,
    /// Per-machine thermal model. [`ThermalConfig::disabled`] (the
    /// default) draws nothing and reproduces the pre-thermal fleet
    /// byte-for-byte.
    pub thermal: ThermalConfig,
    /// Throttle-ladder thresholds (only consulted when thermal is on).
    pub throttle: ThrottleConfig,
    /// Overshoot-breaker thresholds (armed only when thermal is on).
    pub breaker: BreakerConfig,
    /// CI sabotage hook: deliberately break this invariant so the gate
    /// can prove the detector fires. Never set in real runs.
    pub sabotage: Option<Invariant>,
    /// Benchmark pool; machine `i` runs `benches[i % benches.len()]`.
    pub benches: Vec<&'static Benchmark>,
}

impl FleetConfig {
    /// A fleet with the default knobs: every benchmark in rotation, no
    /// chaos, oracle policy, a budget of 60 W per machine, one region,
    /// flat governance, thermal disabled.
    #[must_use]
    pub fn new(machines: usize, shards: usize, rounds: usize, scale: f64, seed: u64) -> Self {
        FleetConfig {
            machines: machines.max(1),
            shards,
            rounds,
            scale,
            seed,
            chaos: ChaosConfig::none(seed),
            policy: GovernorPolicy::Oracle,
            budget_w: 60.0 * machines.max(1) as f64,
            slo_factor: 2.0,
            local_slowdown: 0.10,
            degradation: DegradationConfig::default(),
            regions: 1,
            hierarchy: false,
            thermal: ThermalConfig::disabled(),
            throttle: ThrottleConfig::default(),
            breaker: BreakerConfig::default(),
            sabotage: None,
            benches: all_benchmarks().iter().collect(),
        }
    }

    /// True when this config exercises any of the thermal/hierarchy
    /// extensions — gates the optional report fields so legacy runs
    /// serialize byte-identically.
    #[must_use]
    pub fn extended(&self) -> bool {
        self.thermal.enabled
            || self.hierarchy
            || self.regions > 1
            || self.chaos.sensor_stuck > 0.0
            || self.chaos.aggregator_crash > 0.0
            || self.chaos.brownout > 0.0
    }
}

/// The V/f ladder of machine `m` — heterogeneous by position so the
/// central governor and the membership proptests face three distinct
/// ladders, all inside the paper's 1–4 GHz envelope.
#[must_use]
pub fn machine_ladder(machine: usize) -> FreqLadder {
    match machine % 3 {
        0 => FreqLadder::paper_default(),
        1 => FreqLadder::new(Freq::from_ghz(1.0), Freq::from_ghz(3.5), 250)
            .expect("1–3.5 GHz / 250 MHz ladder"),
        _ => FreqLadder::new(Freq::from_mhz(1250), Freq::from_mhz(3750), 125)
            .expect("1.25–3.75 GHz / 125 MHz ladder"),
    }
}

/// One characterization point the fleet executed (exact golden-grid
/// points at the golden scale/seed — tests compare these byte-for-byte).
#[derive(Debug, Clone)]
pub struct CharactPoint {
    /// Benchmark name.
    pub bench: String,
    /// Characterization frequency, GHz.
    pub ghz: f64,
    /// The memoized summary.
    pub summary: Arc<RunSummary>,
}

/// Per-machine fleet outcome. `Serialize` is hand-written: the thermal
/// fields are emitted only on thermal runs, so legacy reports stay
/// byte-identical (the vendored serde shim has no `skip_serializing_if`).
#[derive(Debug, Clone)]
pub struct MachineRow {
    /// Fleet-wide machine id.
    pub machine: usize,
    /// Owning shard.
    pub shard: usize,
    /// The benchmark this machine serves.
    pub benchmark: String,
    /// Rounds spent under central control.
    pub rounds_central: u32,
    /// Rounds self-governed by the local DEP+BURST policy.
    pub rounds_local: u32,
    /// Rounds pinned at the hardened fallback maximum.
    pub rounds_fallback: u32,
    /// Rounds down (crashed or thermally shut down) — partial by design.
    pub rounds_down: u32,
    /// Crash outages the chaos schedule dealt this machine.
    pub crashes: u32,
    /// Requests served.
    pub served: f64,
    /// Requests shed while down.
    pub shed: f64,
    /// Fraction of up-rounds meeting the latency SLO.
    pub slo_attainment: f64,
    /// Mean per-request latency over up-rounds, seconds.
    pub mean_latency_s: f64,
    /// Energy consumed, joules.
    pub energy_j: f64,
    /// Every degradation-ladder transition, rendered.
    pub transitions: Vec<String>,
    /// Peak true die temperature over the run, milli-°C (thermal runs).
    pub peak_temp_mc: Option<i64>,
    /// Up-rounds spent above the Normal throttle stage (thermal runs).
    pub throttle_rounds: Option<u32>,
    /// Every throttle-ladder transition, rendered (thermal runs).
    pub thermal_transitions: Vec<String>,
}

/// Fleet-level aggregates. `Serialize` is hand-written like
/// [`MachineRow`]'s: the `Option` fields appear only on extended runs.
#[derive(Debug, Clone)]
pub struct FleetSummary {
    /// Machines simulated.
    pub machines: usize,
    /// Shards.
    pub shards: usize,
    /// Rounds simulated.
    pub rounds: usize,
    /// Allocation policy name.
    pub policy: String,
    /// Chaos seed.
    pub chaos_seed: u64,
    /// Crash outages fleet-wide.
    pub crash_events: usize,
    /// Partition outages fleet-wide.
    pub partition_events: usize,
    /// Global power budget, watts.
    pub budget_w: f64,
    /// Rounds where actual fleet power exceeded the effective budget
    /// (plus tolerance) — the naive policy's signature failure.
    pub overshoot_rounds: usize,
    /// Total requests served.
    pub served: f64,
    /// Total requests shed.
    pub shed: f64,
    /// Served-weighted mean SLO attainment over machines.
    pub slo_attainment: f64,
    /// Strict SLO attainment over *all* machine-rounds (extended runs):
    /// a crashed or thermally-shut-down round serves nobody, so it counts
    /// as a miss instead of vanishing from the denominator. This is the
    /// lens that makes budget-oblivious "run hot, crash, restart empty"
    /// behaviour cost what it should.
    pub strict_slo_attainment: Option<f64>,
    /// Fleet energy, joules.
    pub energy_j: f64,
    /// Machine-rounds spent below central control (local + fallback +
    /// down).
    pub degraded_machine_rounds: u64,
    /// Region aggregators (extended runs).
    pub regions: Option<usize>,
    /// Hierarchical governance on (extended runs).
    pub hierarchy: Option<bool>,
    /// Rounds spent under a brownout (extended runs).
    pub brownout_rounds: Option<usize>,
    /// Aggregator + root outage windows (extended runs).
    pub aggregator_events: Option<usize>,
    /// Emergency-throttle engagements fleet-wide (thermal runs).
    pub emergency_throttles: Option<u64>,
    /// Thermal shutdowns fleet-wide (thermal runs).
    pub thermal_shutdowns: Option<u64>,
    /// Staggered black-start recoveries fleet-wide (thermal runs).
    pub black_starts: Option<u64>,
    /// Overshoot-breaker trips fleet-wide (thermal runs).
    pub breaker_trips: Option<u64>,
    /// Hottest true die temperature any machine reached, milli-°C
    /// (thermal runs).
    pub peak_temp_mc: Option<i64>,
    /// Mean effective (browned-out) budget over the run, watts
    /// (extended runs).
    pub mean_effective_budget_w: Option<f64>,
}

impl Serialize for MachineRow {
    fn to_value(&self) -> serde::Value {
        let mut map = vec![
            ("machine".to_owned(), self.machine.to_value()),
            ("shard".to_owned(), self.shard.to_value()),
            ("benchmark".to_owned(), self.benchmark.to_value()),
            ("rounds_central".to_owned(), self.rounds_central.to_value()),
            ("rounds_local".to_owned(), self.rounds_local.to_value()),
            ("rounds_fallback".to_owned(), self.rounds_fallback.to_value()),
            ("rounds_down".to_owned(), self.rounds_down.to_value()),
            ("crashes".to_owned(), self.crashes.to_value()),
            ("served".to_owned(), self.served.to_value()),
            ("shed".to_owned(), self.shed.to_value()),
            ("slo_attainment".to_owned(), self.slo_attainment.to_value()),
            ("mean_latency_s".to_owned(), self.mean_latency_s.to_value()),
            ("energy_j".to_owned(), self.energy_j.to_value()),
            ("transitions".to_owned(), self.transitions.to_value()),
        ];
        if let Some(v) = self.peak_temp_mc {
            map.push(("peak_temp_mc".to_owned(), v.to_value()));
        }
        if let Some(v) = self.throttle_rounds {
            map.push(("throttle_rounds".to_owned(), v.to_value()));
        }
        if !self.thermal_transitions.is_empty() {
            map.push((
                "thermal_transitions".to_owned(),
                self.thermal_transitions.to_value(),
            ));
        }
        serde::Value::Map(map)
    }
}

impl Serialize for FleetSummary {
    fn to_value(&self) -> serde::Value {
        let mut map = vec![
            ("machines".to_owned(), self.machines.to_value()),
            ("shards".to_owned(), self.shards.to_value()),
            ("rounds".to_owned(), self.rounds.to_value()),
            ("policy".to_owned(), self.policy.to_value()),
            ("chaos_seed".to_owned(), self.chaos_seed.to_value()),
            ("crash_events".to_owned(), self.crash_events.to_value()),
            ("partition_events".to_owned(), self.partition_events.to_value()),
            ("budget_w".to_owned(), self.budget_w.to_value()),
            ("overshoot_rounds".to_owned(), self.overshoot_rounds.to_value()),
            ("served".to_owned(), self.served.to_value()),
            ("shed".to_owned(), self.shed.to_value()),
            ("slo_attainment".to_owned(), self.slo_attainment.to_value()),
            ("energy_j".to_owned(), self.energy_j.to_value()),
            (
                "degraded_machine_rounds".to_owned(),
                self.degraded_machine_rounds.to_value(),
            ),
        ];
        let mut opt = |key: &str, v: Option<serde::Value>| {
            if let Some(v) = v {
                map.push((key.to_owned(), v));
            }
        };
        opt(
            "strict_slo_attainment",
            self.strict_slo_attainment.map(|v| v.to_value()),
        );
        opt("regions", self.regions.map(|v| v.to_value()));
        opt("hierarchy", self.hierarchy.map(|v| v.to_value()));
        opt("brownout_rounds", self.brownout_rounds.map(|v| v.to_value()));
        opt("aggregator_events", self.aggregator_events.map(|v| v.to_value()));
        opt("emergency_throttles", self.emergency_throttles.map(|v| v.to_value()));
        opt("thermal_shutdowns", self.thermal_shutdowns.map(|v| v.to_value()));
        opt("black_starts", self.black_starts.map(|v| v.to_value()));
        opt("breaker_trips", self.breaker_trips.map(|v| v.to_value()));
        opt("peak_temp_mc", self.peak_temp_mc.map(|v| v.to_value()));
        opt(
            "mean_effective_budget_w",
            self.mean_effective_budget_w.map(|v| v.to_value()),
        );
        serde::Value::Map(map)
    }
}

/// The serializable fleet report.
#[derive(Debug, Clone, Serialize)]
pub struct FleetReport {
    /// Per-machine rows, in machine order.
    pub machines: Vec<MachineRow>,
    /// Fleet aggregates.
    pub summary: FleetSummary,
}

/// Everything a fleet run produces: the report plus the raw
/// characterization points (for golden-identity tests).
#[derive(Debug, Clone)]
pub struct FleetOutcome {
    /// The report.
    pub report: FleetReport,
    /// The characterization points, in execution order.
    pub charact: Vec<CharactPoint>,
}

/// Synthetic per-machine characterization: what the fleet fuzzer feeds
/// [`run_synthetic`] in place of real simulator runs. All times at
/// request granularity, like the fitted values.
#[derive(Debug, Clone, Copy)]
pub struct SyntheticMachine {
    /// Frequency-scaling service seconds per request (the `A/f` part).
    pub scaling_s: f64,
    /// Fixed service seconds per request (the `B` part).
    pub fixed_s: f64,
    /// Bytes allocated per request.
    pub alloc_per_req: f64,
    /// Bytes per collection (0 = never collects).
    pub bytes_per_gc: f64,
    /// Seconds per collection pause.
    pub gc_pause_s: f64,
}

/// Static per-machine parameters plus mutable round state; owned by the
/// machine's shard and moved through the pool every round.
#[derive(Debug, Clone)]
struct MachineState {
    id: usize,
    shard: usize,
    region: usize,
    bench: &'static str,
    ladder: FreqLadder,
    scaling_s: f64,
    fixed_s: f64,
    cores: usize,
    slo_s: f64,
    cap_max: f64,
    alloc_per_req: f64,
    bytes_per_gc: f64,
    gc_pause_s: f64,
    traffic_seed: u64,
    local: LocalGovernor,
    /// Largest ladder frequency the Proactive stage permits (mid-ladder).
    proactive_cap: Freq,
    sabotage_ceiling: bool,
    // Mutable round state.
    ladder_state: DegradationLadder,
    thermal: ThermalModel,
    throttle: ThrottleLadder,
    freq: Freq,
    backlog: f64,
    alloc_acc: f64,
    pending_gc_s: f64,
    was_crashed: bool,
    /// Post-emergency ceiling bound (armed while at/above Emergency).
    ceiling_bound_mc: Option<i64>,
    /// Round the ceiling bound engaged.
    ceiling_since: u64,
    // Accumulators.
    rounds_central: u32,
    rounds_local: u32,
    rounds_fallback: u32,
    rounds_down: u32,
    crashes: u32,
    served: f64,
    shed: f64,
    lat_sum: f64,
    lat_rounds: u32,
    slo_ok: u32,
    energy_j: f64,
    peak_temp_mc: i64,
    throttle_rounds: u32,
}

impl MachineState {
    /// Advances the thermal/throttle state one round at `p_w` watts of
    /// electrical draw. Returns the leakage-corrected power and whether
    /// the post-emergency ceiling was breached. Thermal-disabled states
    /// never call this.
    fn thermal_round(&mut self, round: usize, p_w: f64, stuck: bool) -> (f64, bool) {
        let tcfg = *self.thermal.config();
        let prev_sev = self.throttle.stage().severity();
        let p_mw = (p_w * 1e3).round() as i64;
        let eff_mw = self.thermal.update(p_mw);
        let sensor = self.thermal.read_sensor(stuck);
        let stage = self
            .throttle
            .observe(round as u64, sensor, self.thermal.true_mc(), &tcfg);
        self.peak_temp_mc = self.peak_temp_mc.max(self.thermal.true_mc());
        // The sabotage hook arms at any throttle engagement (not just
        // Emergency) so fleets that never heat past T_crit — e.g. the
        // fuzzer's synthetic machines — still prove the detector fires.
        let emergency = if self.sabotage_ceiling {
            ThrottleStage::Proactive.severity()
        } else {
            ThrottleStage::Emergency.severity()
        };
        if stage.severity() >= emergency && prev_sev < emergency {
            // Emergency just engaged: the forced floor must turn the RC
            // around — the truth may coast a margin past the entry
            // point, never further.
            let entry = self.thermal.true_mc().max(tcfg.t_crit_mc);
            self.ceiling_bound_mc = Some(if self.sabotage_ceiling {
                tcfg.ambient_mc
            } else {
                entry + CEILING_MARGIN_MC
            });
            self.ceiling_since = round as u64;
        } else if stage.severity() < emergency {
            self.ceiling_bound_mc = None;
        }
        let settle = if self.sabotage_ceiling {
            0
        } else {
            CEILING_SETTLE_ROUNDS
        };
        let breach = self.ceiling_bound_mc.is_some_and(|bound| {
            round as u64 >= self.ceiling_since + settle && self.thermal.true_mc() > bound
        });
        (eff_mw as f64 * 1e-3, breach)
    }
}

/// What one machine reports after a round (the telemetry payload plus
/// the fleet-side accounting inputs).
#[derive(Debug, Clone, Copy)]
struct RoundOut {
    machine: usize,
    /// Mode the round ran under; `None` = down.
    mode: Option<GovernorMode>,
    /// Backlog after the round (the telemetry content).
    backlog: f64,
    /// Frequency the round ran at (ladder-membership check).
    freq: Freq,
    /// Energy spent this round, joules.
    energy: f64,
    /// The post-emergency thermal ceiling was violated this round.
    ceiling_breach: bool,
}

/// One machine's step input: chaos state, central assignment, breaker
/// trip flag.
type StepIn = (ChaosState, Option<Freq>, bool);

/// One shard's step input: its machine states plus each machine's
/// per-round inputs.
type ShardStep = (Vec<MachineState>, Vec<StepIn>);

/// A delayed telemetry datagram on the governor's ingest queue.
#[derive(Debug, Clone, Copy)]
struct Telemetry {
    due: usize,
    backlog: f64,
    mode: GovernorMode,
}

/// The governor's last-known view of one machine.
#[derive(Debug, Clone, Copy)]
struct Known {
    backlog: f64,
    mode: GovernorMode,
}

fn violation(invariant: Invariant, round: usize, detail: String) -> depburst_core::DepburstError {
    InvariantViolation {
        invariant,
        at_secs: round as f64 * ROUND_SECS,
        detail,
    }
    .to_error()
}

/// This round's arrival count for one machine: a diurnal-ish wave over
/// [`BASE_UTIL`] of max-frequency capacity, with seeded jitter and rare
/// bursts. Stateless — a pure function of (traffic seed, round) — so
/// shard stepping order can never perturb it.
fn arrivals(state: &MachineState, round: usize) -> f64 {
    let mut rng = SplitMix64::new(
        state.traffic_seed ^ (round as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15),
    );
    let wave = 1.0 + 0.3 * (TAU * (round % 32) as f64 / 32.0).sin();
    let burst = if rng.chance(0.1) { 1.8 } else { 1.0 };
    let jitter = 1.0 + 0.1 * rng.next_signed();
    BASE_UTIL * state.cap_max * wave * burst * jitter
}

/// Steps one machine through one round: degradation-ladder observation,
/// frequency selection under the throttle/breaker caps, request service
/// with GC debt, thermal update, and metric accumulation. Pure in
/// (state, round, chaos, central assignment, trip flag).
fn step_machine(
    state: &mut MachineState,
    round: usize,
    chaos: ChaosState,
    central: Option<Freq>,
    tripped: bool,
    model: &PowerModel,
) -> RoundOut {
    let thermal_on = state.thermal.config().enabled;
    // The stage that actuates this round is last round's observation —
    // the control loop has a one-round actuation delay, like real
    // closed-loop DVFS.
    let stage = state.throttle.stage();

    if chaos.crashed || (thermal_on && stage == ThrottleStage::Shutdown) {
        if chaos.crashed && !state.was_crashed {
            state.crashes += 1;
            // A restart reboots into the hardened fallback whatever the
            // mode was; re-earning central control takes full healthy
            // windows.
            state.ladder_state.force_fallback(round as u64, "crash-restart");
            state.freq = state.ladder.max();
        }
        state.was_crashed = chaos.crashed;
        state.shed += state.backlog + arrivals(state, round);
        state.backlog = 0.0;
        state.alloc_acc = 0.0;
        state.pending_gc_s = 0.0;
        state.rounds_down += 1;
        let mut breach = false;
        if thermal_on {
            // The package is off: zero electrical power, the RC cools,
            // the shutdown hold counts down toward its black-start.
            let (_, b) = state.thermal_round(round, 0.0, chaos.sensor_stuck);
            breach = b;
        }
        return RoundOut {
            machine: state.id,
            mode: None,
            backlog: 0.0,
            freq: state.ladder.max(),
            energy: 0.0,
            ceiling_breach: breach,
        };
    }
    state.was_crashed = false;

    // A thermal emergency blocks the rejoin streak but never demotes:
    // heat is a local actuation problem, not a reachability failure.
    let thermal_ok = !thermal_on || stage.severity() < ThrottleStage::Emergency.severity();
    let mode = state.ladder_state.observe_health(
        round as u64,
        !chaos.partitioned,
        !chaos.telemetry_lost,
        thermal_ok,
    );
    let view = MachineView {
        id: state.id,
        ladder: &state.ladder,
        scaling_s: state.scaling_s,
        fixed_s: state.fixed_s,
        cores: state.cores,
    };
    let mut freq = match mode {
        GovernorMode::Central => {
            // A fresh assignment only lands when the control link is up;
            // otherwise the machine holds its last allocated frequency.
            if let Some(f) = central {
                if !chaos.partitioned {
                    state.freq = state.ladder.floor(f);
                }
            }
            state.freq
        }
        GovernorMode::LocalDepBurst => state.local.choose(&view),
        GovernorMode::FallbackMax => state.ladder.max(),
    };
    if thermal_on {
        // Power-integrity caps override every governor, strongest last.
        freq = match stage {
            ThrottleStage::Normal => freq,
            ThrottleStage::Proactive => {
                if freq > state.proactive_cap {
                    state.proactive_cap
                } else {
                    freq
                }
            }
            ThrottleStage::Emergency | ThrottleStage::Shutdown => state.ladder.min(),
        };
        if tripped {
            freq = state.ladder.min();
        }
        if stage != ThrottleStage::Normal {
            state.throttle_rounds += 1;
        }
    }
    state.freq = freq;
    match mode {
        GovernorMode::Central => state.rounds_central += 1,
        GovernorMode::LocalDepBurst => state.rounds_local += 1,
        GovernorMode::FallbackMax => state.rounds_fallback += 1,
    }

    // Service: capacity is the round minus last round's GC debt.
    let service_s = view.service_time(freq);
    let budget_s = (ROUND_SECS - state.pending_gc_s).max(ROUND_SECS * 0.25);
    state.pending_gc_s = 0.0;
    let mu = budget_s / service_s;
    let arr = arrivals(state, round);
    let demand = state.backlog + arr;
    let served = demand.min(mu);
    state.backlog = demand - served;

    // GC debt for the next round: served requests allocate; full heaps
    // collect at the characterized (non-scaling) pause.
    if state.bytes_per_gc > 0.0 {
        state.alloc_acc += served * state.alloc_per_req;
        let gcs = (state.alloc_acc / state.bytes_per_gc).floor();
        if gcs > 0.0 {
            state.alloc_acc -= gcs * state.bytes_per_gc;
            state.pending_gc_s = (gcs * state.gc_pause_s).min(ROUND_SECS * 0.75);
        }
    }

    let latency = service_s * (1.0 + state.backlog / mu.max(1e-12));
    let util = (served / mu.max(1e-12)).min(1.0);
    let power = model.power(freq, &vec![util; state.cores]).total();
    let (energy, breach) = if thermal_on {
        let (eff_w, breach) = state.thermal_round(round, power, chaos.sensor_stuck);
        (eff_w * ROUND_SECS, breach)
    } else {
        (power * ROUND_SECS, false)
    };

    state.served += served;
    state.lat_sum += latency;
    state.lat_rounds += 1;
    state.slo_ok += u32::from(latency <= state.slo_s);
    state.energy_j += energy;

    RoundOut {
        machine: state.id,
        mode: Some(mode),
        backlog: state.backlog,
        freq,
        energy,
        ceiling_breach: breach,
    }
}

/// Builds the per-shard machine states from fitted (or synthetic)
/// per-machine parameters, looked up by machine id.
fn build_states(
    config: &FleetConfig,
    topo: &FleetTopology,
    bench_name: &dyn Fn(usize) -> &'static str,
    params: &dyn Fn(usize) -> SyntheticMachine,
    cores: usize,
) -> Vec<Vec<MachineState>> {
    (0..topo.shards)
        .map(|shard| {
            topo.machines_in(shard)
                .map(|m| {
                    let p = params(m);
                    let ladder = machine_ladder(m);
                    let s_max = p.scaling_s / ladder.max().ghz() + p.fixed_s;
                    let mid_mhz = (ladder.min().mhz() + ladder.max().mhz()) / 2;
                    let proactive_cap = ladder.floor(Freq::from_mhz(mid_mhz));
                    MachineState {
                        id: m,
                        shard,
                        region: region_of(config.machines, config.regions, m),
                        bench: bench_name(m),
                        scaling_s: p.scaling_s,
                        fixed_s: p.fixed_s,
                        cores,
                        slo_s: config.slo_factor * s_max,
                        cap_max: ROUND_SECS / s_max,
                        alloc_per_req: p.alloc_per_req,
                        bytes_per_gc: p.bytes_per_gc,
                        gc_pause_s: p.gc_pause_s,
                        traffic_seed: topo.machine_seed(m) ^ TRAFFIC_SALT,
                        local: LocalGovernor::new(config.local_slowdown),
                        proactive_cap,
                        sabotage_ceiling: config.sabotage == Some(Invariant::ThermalCeiling),
                        ladder_state: DegradationLadder::new(config.degradation),
                        thermal: ThermalModel::new(config.thermal, m),
                        throttle: ThrottleLadder::new(config.throttle, m),
                        freq: ladder.max(),
                        ladder,
                        backlog: 0.0,
                        alloc_acc: 0.0,
                        pending_gc_s: 0.0,
                        was_crashed: false,
                        ceiling_bound_mc: None,
                        ceiling_since: 0,
                        rounds_central: 0,
                        rounds_local: 0,
                        rounds_fallback: 0,
                        rounds_down: 0,
                        crashes: 0,
                        served: 0.0,
                        shed: 0.0,
                        lat_sum: 0.0,
                        lat_rounds: 0,
                        slo_ok: 0,
                        energy_j: 0.0,
                        peak_temp_mc: i64::MIN,
                        throttle_rounds: 0,
                    }
                })
                .collect()
        })
        .collect()
}

/// Runs the round loop over prepared shard states and assembles the
/// report. The heart of the fleet — shared by the simulator-backed
/// [`run_with`] and the fuzzer's [`run_synthetic`].
fn run_rounds(
    ctx: &ExecCtx,
    config: &FleetConfig,
    topo: &FleetTopology,
    mut shards: Vec<Vec<MachineState>>,
) -> depburst_core::Result<FleetReport> {
    let machines = topo.machines;
    let model = PowerModel::haswell_22nm();
    let schedule =
        ChaosSchedule::generate_with_regions(&config.chaos, machines, config.rounds, config.regions);
    let regions = schedule.regions();
    let region_size: Vec<usize> = (0..regions)
        .map(|r| (0..machines).filter(|&m| schedule.region_of(m) == r).count())
        .collect();

    let mut hier = HierarchicalGovernor::new(regions);
    let mut breaker = OvershootBreaker::new(machines, config.breaker);
    let breaker_on = config.thermal.enabled;
    let sabotage_hierarchy = config.sabotage == Some(Invariant::HierarchyBudgetConservation);

    // The governor's delayed-telemetry ingest (DepBurst policy): what it
    // currently believes, and the in-flight datagrams.
    let mut known: Vec<Known> = (0..machines)
        .map(|_| Known {
            backlog: 0.0,
            mode: GovernorMode::Central,
        })
        .collect();
    let mut inflight: Vec<VecDeque<Telemetry>> = vec![VecDeque::new(); machines];
    let mut prev_backlog: Vec<f64> = vec![0.0; machines];
    let mut overshoot_rounds = 0usize;
    let mut eff_budget_sum = 0.0f64;

    for round in 0..config.rounds {
        // Deliver due telemetry.
        for (m, queue) in inflight.iter_mut().enumerate() {
            while queue.front().is_some_and(|t| t.due <= round) {
                let t = queue.pop_front().expect("front checked");
                known[m] = Known {
                    backlog: t.backlog,
                    mode: t.mode,
                };
            }
        }

        // The effective (browned-out) budget every allocator sees.
        let eff_w = config.budget_w * f64::from(schedule.budget_milli(round)) / 1000.0;
        eff_budget_sum += eff_w;
        let root_down = schedule.root_down(round);

        // Can machine m reach its central allocator this round? Flat
        // topology has no aggregator tier — every machine talks to the
        // root, so a root outage orphans the *whole fleet at once*. The
        // hierarchy answers from the machine's own region aggregator: a
        // root outage merely freezes cross-region rebalancing, and an
        // aggregator outage orphans one region, never the fleet.
        let unreachable = |m: usize| {
            if config.hierarchy {
                schedule.aggregator_down(round, schedule.region_of(m))
            } else {
                root_down
            }
        };

        // Central allocation for this round's batch.
        let mut assigned: Vec<Option<Freq>> = vec![None; machines];
        match config.policy {
            GovernorPolicy::NaiveStatic => {
                // No budget awareness: central says "maximum" to every
                // reachable machine.
                for states in &shards {
                    for s in states {
                        assigned[s.id] = Some(s.ladder.max());
                    }
                }
            }
            GovernorPolicy::Oracle | GovernorPolicy::DepBurst => {
                // Candidates: machines the governor believes are under
                // central control and can reach right now. The oracle
                // reads true state; DepBurst trusts its (possibly stale,
                // lossy, delayed) telemetry.
                let mut cands: Vec<(&MachineState, f64)> = Vec::new();
                for states in &shards {
                    for s in states {
                        let chaos = schedule.state(round, s.id);
                        if chaos.crashed || chaos.partitioned || unreachable(s.id) {
                            continue;
                        }
                        let (mode, backlog) = match config.policy {
                            GovernorPolicy::Oracle => (s.ladder_state.mode(), s.backlog),
                            _ => (known[s.id].mode, known[s.id].backlog),
                        };
                        if mode == GovernorMode::Central {
                            cands.push((s, backlog));
                        }
                    }
                }
                // Load-weighted demand views: queued machines look
                // slower, so the latency-levelling allocator feeds them
                // first.
                fn view_of<'a>(s: &'a MachineState, backlog: f64) -> MachineView<'a> {
                    MachineView {
                        id: s.id,
                        ladder: &s.ladder,
                        scaling_s: s.scaling_s * (1.0 + backlog / s.cap_max),
                        fixed_s: s.fixed_s,
                        cores: s.cores,
                    }
                }
                // Thermal-aware derating: the allocator plans in raw
                // electrical watts, but hot silicon draws `leak ×
                // planned` from the feed. A governor that ignores this
                // allocates "within budget" and still overshoots —
                // and the breaker then punishes machines that obeyed
                // every order. Divide each slice's budget by its
                // members' mean reported leak factor so the *effective*
                // draw is what fits the slice.
                let leak_of = |pred: &dyn Fn(&MachineState) -> bool| -> f64 {
                    if !config.thermal.enabled {
                        return 1.0;
                    }
                    let (mut sum, mut n) = (0.0f64, 0u32);
                    for (s, _) in &cands {
                        if pred(s) {
                            sum += s.thermal.leak_factor();
                            n += 1;
                        }
                    }
                    if n == 0 { 1.0 } else { (sum / f64::from(n)).max(1.0) }
                };
                let mut slices: Vec<(Vec<usize>, Vec<MachineView<'_>>, f64, usize)> = Vec::new();
                if config.hierarchy {
                    // Root tier: damped, dead-banded share rebalance
                    // toward per-region demand; frozen while the root
                    // itself is down (the regions run autonomously).
                    let mut demand = vec![0.0f64; regions];
                    for (s, backlog) in &cands {
                        demand[s.region] += 1.0 + backlog / s.cap_max;
                    }
                    // Orphaned regions (aggregator down) report silence,
                    // not zero demand: freeze their shares so the outage
                    // cannot cascade into sibling windfalls and a starved
                    // rejoin.
                    let orphaned: Vec<bool> = (0..regions)
                        .map(|r| schedule.aggregator_down(round, r))
                        .collect();
                    hier.rebalance_masked(&demand, &orphaned, root_down);
                    let mut region_w: Vec<f64> =
                        (0..regions).map(|r| hier.region_budget(r, eff_w)).collect();
                    if sabotage_hierarchy {
                        region_w[0] *= 1.10;
                    }
                    let total: f64 = region_w.iter().sum();
                    if total > eff_w * (1.0 + 1e-9) + 1e-9 {
                        return Err(violation(
                            Invariant::HierarchyBudgetConservation,
                            round,
                            format!(
                                "region budgets sum to {total:.2} W over an effective \
                                 {eff_w:.2} W"
                            ),
                        ));
                    }
                    for r in 0..regions {
                        let ids: Vec<usize> = cands
                            .iter()
                            .filter(|(s, _)| s.region == r)
                            .map(|(s, _)| s.id)
                            .collect();
                        let views: Vec<MachineView<'_>> = cands
                            .iter()
                            .filter(|(s, _)| s.region == r)
                            .map(|(s, backlog)| view_of(s, *backlog))
                            .collect();
                        if !views.is_empty() {
                            let leak = leak_of(&|s: &MachineState| s.region == r);
                            slices.push((ids, views, region_w[r] / leak, region_size[r]));
                        }
                    }
                } else {
                    let ids: Vec<usize> = cands.iter().map(|(s, _)| s.id).collect();
                    let views: Vec<MachineView<'_>> = cands
                        .iter()
                        .map(|(s, backlog)| view_of(s, *backlog))
                        .collect();
                    if !views.is_empty() {
                        let leak = leak_of(&|_| true);
                        slices.push((ids, views, eff_w / leak, machines));
                    }
                }
                for (ids, views, budget, fleet) in slices {
                    let alloc = CentralGovernor::new(budget).allocate(&model, &views, fleet);
                    for (id, freq) in ids.iter().zip(&alloc.freqs) {
                        assigned[*id] = Some(*freq);
                    }
                    // The water-filling cannot descend below the ladder
                    // minimum, so a browned-out or starved-share slice
                    // smaller than the mandatory floor is not a violation;
                    // only allocating *above* both the slice and the floor
                    // means the governor spent budget it did not have.
                    let bound = alloc.available_w.max(alloc.floor_w);
                    if alloc.power_w > bound * (1.0 + 1e-9) + 1e-9 {
                        return Err(violation(
                            Invariant::PowerBudgetConservation,
                            round,
                            format!(
                                "central allocation estimates {:.1} W over a {:.1} W slice \
                                 (floor {:.1} W)",
                                alloc.power_w, alloc.available_w, alloc.floor_w
                            ),
                        ));
                    }
                }
            }
        }

        // Parallel shard step: pure per-machine functions, plan order.
        let inputs: Vec<ShardStep> = shards
            .drain(..)
            .map(|states| {
                let ins = states
                    .iter()
                    .map(|s| {
                        let mut chaos = schedule.state(round, s.id);
                        // Aggregator/root outages read as partitions at
                        // the machine: no fresh assignment, no rejoin
                        // credit.
                        chaos.partitioned = chaos.partitioned || unreachable(s.id);
                        let tripped = breaker_on && breaker.is_tripped(round as u64, s.id);
                        (chaos, assigned[s.id], tripped)
                    })
                    .collect();
                (states, ins)
            })
            .collect();
        let stepped: Vec<(Vec<MachineState>, Vec<RoundOut>)> =
            ctx.map(inputs, |(mut states, ins)| {
                let outs = states
                    .iter_mut()
                    .zip(&ins)
                    .map(|(state, &(chaos, central, tripped))| {
                        step_machine(state, round, chaos, central, tripped, &model)
                    })
                    .collect();
                (states, outs)
            });

        // Gather: ladder membership, thermal ceiling, power accounting,
        // telemetry batch.
        let mut round_power = 0.0;
        let mut powers = vec![0.0f64; machines];
        for (states, outs) in &stepped {
            for (state, out) in states.iter().zip(outs) {
                if !state.ladder.contains(out.freq) {
                    return Err(violation(
                        Invariant::LadderMembership,
                        round,
                        format!("machine {} ran off-ladder at {}", out.machine, out.freq),
                    ));
                }
                if out.ceiling_breach {
                    return Err(violation(
                        Invariant::ThermalCeiling,
                        round,
                        format!(
                            "machine {} coasted past its post-emergency ceiling at {} m°C",
                            out.machine,
                            state.thermal.true_mc()
                        ),
                    ));
                }
                round_power += out.energy / ROUND_SECS;
                powers[out.machine] = out.energy / ROUND_SECS;
                let chaos = schedule.state(round, out.machine);
                if let Some(mode) = out.mode {
                    if !chaos.telemetry_lost {
                        // Stale harvests deliver the previous round's
                        // value; slow links arrive late; both on
                        // time-ordered queues so delivery order is
                        // deterministic.
                        let content = if chaos.stale {
                            prev_backlog[out.machine]
                        } else {
                            out.backlog
                        };
                        inflight[out.machine].push_back(Telemetry {
                            due: round + 1 + chaos.link_delay as usize,
                            backlog: content,
                            mode,
                        });
                    }
                }
                prev_backlog[out.machine] = out.backlog;
            }
        }
        if round_power > eff_w * (1.0 + OVERSHOOT_REL_TOL) {
            overshoot_rounds += 1;
        }
        if breaker_on {
            // The feed's anti-cascade backstop: trip the heaviest
            // overshooters to the floor, release them staggered.
            breaker.observe(round as u64, eff_w, &powers);
        }
        shards = stepped.into_iter().map(|(states, _)| states).collect();
    }

    // Post-run invariants and report assembly.
    let thermal_on = config.thermal.enabled;
    let sabotage_throttle = config.sabotage == Some(Invariant::ThrottleMonotonicity);
    let mut rows = Vec::with_capacity(machines);
    for states in &mut shards {
        for s in states.iter_mut() {
            if let Some(issue) = s.ladder_state.monotonicity_issue() {
                return Err(violation(
                    Invariant::RejoinMonotonicity,
                    config.rounds,
                    format!("machine {}: {issue}", s.id),
                ));
            }
            if thermal_on {
                if sabotage_throttle && s.id == 0 {
                    s.throttle.forge_transition(ThrottleTransition {
                        round: config.rounds as u64,
                        from: ThrottleStage::Emergency,
                        to: ThrottleStage::Normal,
                        reason: "sabotage",
                    });
                }
                if let Some(issue) = s.throttle.monotonicity_issue() {
                    return Err(violation(
                        Invariant::ThrottleMonotonicity,
                        config.rounds,
                        format!("machine {}: {issue}", s.id),
                    ));
                }
            }
            rows.push(MachineRow {
                machine: s.id,
                shard: s.shard,
                benchmark: s.bench.to_owned(),
                rounds_central: s.rounds_central,
                rounds_local: s.rounds_local,
                rounds_fallback: s.rounds_fallback,
                rounds_down: s.rounds_down,
                crashes: s.crashes,
                served: s.served,
                shed: s.shed,
                slo_attainment: if s.lat_rounds > 0 {
                    f64::from(s.slo_ok) / f64::from(s.lat_rounds)
                } else {
                    0.0
                },
                mean_latency_s: if s.lat_rounds > 0 {
                    s.lat_sum / f64::from(s.lat_rounds)
                } else {
                    0.0
                },
                energy_j: s.energy_j,
                transitions: s
                    .ladder_state
                    .transitions()
                    .iter()
                    .map(|t| t.to_string())
                    .collect(),
                peak_temp_mc: if thermal_on { Some(s.peak_temp_mc) } else { None },
                throttle_rounds: if thermal_on { Some(s.throttle_rounds) } else { None },
                thermal_transitions: if thermal_on {
                    s.throttle.transitions().iter().map(|t| t.to_string()).collect()
                } else {
                    Vec::new()
                },
            });
        }
    }
    rows.sort_by_key(|r| r.machine);

    let served: f64 = rows.iter().map(|r| r.served).sum();
    let shed: f64 = rows.iter().map(|r| r.shed).sum();
    let energy_j: f64 = rows.iter().map(|r| r.energy_j).sum();
    let slo = if served > 0.0 {
        rows.iter().map(|r| r.slo_attainment * r.served).sum::<f64>() / served
    } else {
        0.0
    };
    let degraded: u64 = rows
        .iter()
        .map(|r| u64::from(r.rounds_local + r.rounds_fallback + r.rounds_down))
        .sum();
    let slo_ok_total: u64 = shards.iter().flatten().map(|s| u64::from(s.slo_ok)).sum();
    let machine_rounds = (machines * config.rounds).max(1) as f64;
    let extended = config.extended();
    let throttle_reason_count = |reason: &str| -> u64 {
        shards
            .iter()
            .flatten()
            .map(|s| {
                s.throttle
                    .transitions()
                    .iter()
                    .filter(|t| t.reason == reason)
                    .count() as u64
            })
            .sum()
    };

    let summary = FleetSummary {
        machines,
        shards: topo.shards,
        rounds: config.rounds,
        policy: config.policy.name().to_owned(),
        chaos_seed: config.chaos.seed,
        crash_events: schedule.crash_events(),
        partition_events: schedule.partition_events(),
        budget_w: config.budget_w,
        overshoot_rounds,
        served,
        shed,
        slo_attainment: slo,
        strict_slo_attainment: extended.then(|| slo_ok_total as f64 / machine_rounds),
        energy_j,
        degraded_machine_rounds: degraded,
        regions: extended.then_some(regions),
        hierarchy: extended.then_some(config.hierarchy),
        brownout_rounds: extended.then_some(schedule.brownout_rounds()),
        aggregator_events: extended.then_some(schedule.aggregator_events()),
        emergency_throttles: thermal_on.then(|| throttle_reason_count("emergency-throttle")),
        thermal_shutdowns: thermal_on.then(|| throttle_reason_count("thermal-shutdown")),
        black_starts: thermal_on.then(|| throttle_reason_count("black-start")),
        breaker_trips: thermal_on.then(|| breaker.trips()),
        peak_temp_mc: thermal_on.then(|| {
            shards
                .iter()
                .flatten()
                .map(|s| s.peak_temp_mc)
                .max()
                .unwrap_or(0)
        }),
        mean_effective_budget_w: extended
            .then(|| eff_budget_sum / (config.rounds.max(1)) as f64),
    };
    Ok(FleetReport {
        machines: rows,
        summary,
    })
}

/// Runs the fleet on `ctx`: characterization through the memoized,
/// journaled point pipeline (per-shard namespaces), then the round loop
/// with per-shard parallel stepping. The outcome is a pure function of
/// the config — any worker count, any cache temperature.
///
/// # Errors
/// Characterization failures propagate as the usual sweep errors; a
/// power-budget, thermal, hierarchy, or rejoin-monotonicity violation
/// surfaces as `DepburstError::InvariantViolation`.
pub fn run_with(ctx: &ExecCtx, config: &FleetConfig) -> depburst_core::Result<FleetOutcome> {
    let topo = FleetTopology::new(config.machines, config.shards, config.seed);
    let machines = topo.machines;
    let bench_of: Vec<&'static Benchmark> = (0..machines)
        .map(|m| config.benches[m % config.benches.len()])
        .collect();

    // Characterization: per shard (its own journal namespace), each
    // distinct benchmark at 1 GHz and 4 GHz. The memo cache collapses
    // repeats across shards into one simulation each.
    let mut charact = Vec::new();
    let mut fit: BTreeMap<&'static str, (Arc<RunSummary>, Arc<RunSummary>)> = BTreeMap::new();
    for shard in 0..topo.shards {
        let mut names: Vec<&'static Benchmark> = Vec::new();
        for m in topo.machines_in(shard) {
            if !names.iter().any(|b| b.name == bench_of[m].name) {
                names.push(bench_of[m]);
            }
        }
        let mut plan = SweepPlan::new();
        for bench in &names {
            for ghz in [1.0, 4.0] {
                plan.push(SimPoint::new(
                    bench,
                    Freq::from_ghz(ghz),
                    config.scale,
                    config.seed,
                ));
            }
        }
        let namespace = format!("shard{shard}");
        let results = ctx.execute_in(Some(&namespace), &plan)?;
        for (i, bench) in names.iter().enumerate() {
            let t1 = results[2 * i].clone();
            let t4 = results[2 * i + 1].clone();
            charact.push(CharactPoint {
                bench: bench.name.to_owned(),
                ghz: 1.0,
                summary: t1.clone(),
            });
            charact.push(CharactPoint {
                bench: bench.name.to_owned(),
                ghz: 4.0,
                summary: t4.clone(),
            });
            fit.entry(bench.name).or_insert((t1, t4));
        }
    }

    let cores = simx::MachineConfig::haswell_quad().cores;
    let params = |m: usize| {
        let bench = bench_of[m];
        let (t1, t4) = &fit[bench.name];
        let (t1, t4) = (t1.exec.as_secs(), t4.exec.as_secs());
        // Two-point DEP+BURST fit: T(f) = A / f_ghz + B.
        let a = ((t1 - t4) * 4.0 / 3.0).max(0.0);
        let b = (t4 - a / 4.0).max(t4 * 0.01).max(1e-9);
        let summary4 = &fit[bench.name].1;
        let gc_count = summary4.gc_count as f64;
        SyntheticMachine {
            scaling_s: a / REQS,
            fixed_s: b / REQS,
            alloc_per_req: summary4.allocated as f64 / REQS,
            bytes_per_gc: if gc_count > 0.0 {
                summary4.allocated as f64 / gc_count
            } else {
                0.0
            },
            gc_pause_s: if gc_count > 0.0 {
                summary4.gc_time.as_secs() / gc_count
            } else {
                0.0
            },
        }
    };
    let shards = build_states(config, &topo, &|m| bench_of[m].name, &params, cores);
    let report = run_rounds(ctx, config, &topo, shards)?;
    Ok(FleetOutcome { report, charact })
}

/// Runs the round loop over *synthetic* machine characterizations —
/// no simulator in the loop, so a whole fleet run costs microseconds.
/// This is the fleet fuzzer's entry point: every chaos class, the
/// thermal/throttle/breaker stack, the hierarchy, and all the fleet
/// invariants run exactly as in [`run_with`]. Machine `m` takes
/// `params[m % params.len()]`.
///
/// # Errors
/// An invariant violation surfaces as
/// `DepburstError::InvariantViolation`, exactly as in [`run_with`].
pub fn run_synthetic(
    config: &FleetConfig,
    params: &[SyntheticMachine],
) -> depburst_core::Result<FleetReport> {
    assert!(!params.is_empty(), "synthetic fleet needs at least one machine profile");
    let topo = FleetTopology::new(config.machines, config.shards, config.seed);
    let cores = simx::MachineConfig::haswell_quad().cores;
    let shards = build_states(
        config,
        &topo,
        &|_| "synthetic",
        &|m| params[m % params.len()],
        cores,
    );
    run_rounds(&ExecCtx::sequential(), config, &topo, shards)
}

/// Renders the fleet report as the experiment's text table plus the
/// summary block.
#[must_use]
pub fn render(report: &FleetReport) -> String {
    let mut table = TextTable::new(&[
        "machine", "shard", "bench", "central", "local", "fallback", "down", "crashes", "slo",
        "lat(ms)", "energy(J)", "transitions",
    ]);
    for r in &report.machines {
        table.row(vec![
            r.machine.to_string(),
            r.shard.to_string(),
            r.benchmark.clone(),
            r.rounds_central.to_string(),
            r.rounds_local.to_string(),
            r.rounds_fallback.to_string(),
            r.rounds_down.to_string(),
            r.crashes.to_string(),
            format!("{:.1}%", r.slo_attainment * 100.0),
            format!("{:.2}", r.mean_latency_s * 1e3),
            format!("{:.1}", r.energy_j),
            r.transitions.len().to_string(),
        ]);
    }
    let s = &report.summary;
    let mut out = format!(
        "{}\nfleet: {} machines / {} shards, {} rounds, policy {} \
         (chaos seed {})\n\
         outages: {} crashes, {} partitions; degraded machine-rounds: {}\n\
         budget {:.0} W, overshoot rounds: {}\n\
         served {:.0}, shed {:.0}, SLO attainment {:.1}%, energy {:.1} J\n",
        table.render(),
        s.machines,
        s.shards,
        s.rounds,
        s.policy,
        s.chaos_seed,
        s.crash_events,
        s.partition_events,
        s.degraded_machine_rounds,
        s.budget_w,
        s.overshoot_rounds,
        s.served,
        s.shed,
        s.slo_attainment * 100.0,
        s.energy_j,
    );
    if let (Some(regions), Some(hierarchy)) = (s.regions, s.hierarchy) {
        out.push_str(&format!(
            "governance: {} regions, {}; brownout rounds: {}, aggregator outages: {}, \
             mean effective budget {:.1} W\n",
            regions,
            if hierarchy { "hierarchical" } else { "flat-central" },
            s.brownout_rounds.unwrap_or(0),
            s.aggregator_events.unwrap_or(0),
            s.mean_effective_budget_w.unwrap_or(0.0),
        ));
    }
    if let Some(peak) = s.peak_temp_mc {
        out.push_str(&format!(
            "thermal: peak {:.1} °C; emergency-throttle: {}, thermal-shutdown: {}, \
             black-start: {}, breaker trips: {}\n",
            peak as f64 / 1000.0,
            s.emergency_throttles.unwrap_or(0),
            s.thermal_shutdowns.unwrap_or(0),
            s.black_starts.unwrap_or(0),
            s.breaker_trips.unwrap_or(0),
        ));
    }
    out
}

/// Runs a fleet sequentially (tests and quick scripts).
///
/// # Panics
/// Panics if the run fails; prefer [`run_with`] in binaries.
#[must_use]
pub fn run(config: &FleetConfig) -> FleetOutcome {
    run_with(&ExecCtx::sequential(), config).unwrap_or_else(|e| panic!("fleet: {e}"))
}
