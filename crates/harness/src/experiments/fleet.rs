//! Fleet-scale DVFS governance under chaos: a sharded multi-machine
//! simulation where a central governor allocates frequencies to N
//! machines under a global power budget, and every machine degrades
//! gracefully — central → local DEP+BURST → fallback-to-max — when the
//! fleet misbehaves.
//!
//! # Structure
//!
//! The fleet layers on the existing point pipeline twice over:
//!
//! 1. **Characterization** — each shard runs its benchmarks at 1 GHz and
//!    4 GHz through [`ExecCtx::execute_in`] with a per-shard journal
//!    namespace; the memo cache shares the points fleet-wide (they are
//!    the exact points of the golden grid), the checkpoint journal keeps
//!    each shard's resume state independent. From the two points each
//!    machine gets the DEP+BURST decomposition at request granularity:
//!    `s(f) = scaling_s / f_ghz + fixed_s` over [`REQS`] requests.
//! 2. **Round loop** — simulated time advances in [`ROUND_SECS`] rounds.
//!    Per round, the central governor (sequential, pure) batches one
//!    allocation from the telemetry it has; then every shard steps its
//!    machines in parallel on the context's pool ([`ExecCtx::map`]
//!    preserves order, each step is a pure function of its inputs), and
//!    the machines' telemetry is batched back — delayed, staled, or
//!    dropped per the chaos schedule.
//!
//! # Chaos and degradation
//!
//! A seeded [`ChaosSchedule`] (pure function of the chaos config) injects
//! machine crash/restart outages, telemetry dropout, stale harvests,
//! governor↔machine partitions and slow links. Each machine runs a
//! [`DegradationLadder`]; its transitions land in the report, feed the
//! `rejoin-monotonicity` invariant, and explain every SLO/energy number.
//! Crashed rounds are *partial by design*: the machine sheds its traffic
//! and its row says so — the sweep itself never loses a point.
//!
//! At zero chaos intensity a fleet of one lusearch machine reproduces the
//! single-machine golden byte-for-byte (the characterization points are
//! the golden points), which is what pins this whole subsystem to the
//! paper pipeline.

use std::collections::BTreeMap;
use std::collections::VecDeque;
use std::f64::consts::TAU;
use std::sync::Arc;

use dacapo_sim::{all_benchmarks, Benchmark};
use dvfs_trace::{Freq, FreqLadder};
use energyx::{
    CentralGovernor, DegradationConfig, DegradationLadder, GovernorMode, GovernorPolicy,
    LocalGovernor, MachineView, PowerModel,
};
use serde::Serialize;
use simx::faults::SplitMix64;
use simx::fleet::{ChaosConfig, ChaosSchedule, ChaosState, FleetTopology};
use simx::{Invariant, InvariantViolation};

use crate::report::TextTable;
use crate::run::{ExecCtx, RunSummary, SimPoint, SweepPlan};

/// Requests one characterization run stands for: per-request service
/// time is the run's execution time over this many requests.
pub const REQS: f64 = 100.0;

/// Simulated seconds per fleet round.
pub const ROUND_SECS: f64 = 1.0;

/// Stream salt of the per-machine traffic draws.
const TRAFFIC_SALT: u64 = 0x0074_7261_6666_6963;

/// Baseline utilization of a machine's max-frequency capacity.
const BASE_UTIL: f64 = 0.6;

/// Relative tolerance on the fleet-power overshoot metric.
const OVERSHOOT_REL_TOL: f64 = 0.05;

/// The whole fleet experiment configuration.
#[derive(Debug, Clone)]
pub struct FleetConfig {
    /// Simulated machines.
    pub machines: usize,
    /// Shards (parallel step granularity and journal namespaces).
    pub shards: usize,
    /// Fleet rounds to simulate.
    pub rounds: usize,
    /// Characterization work scale (1.0 = the paper's full runs).
    pub scale: f64,
    /// Master seed: characterization runs use it directly, per-machine
    /// traffic streams derive from it.
    pub seed: u64,
    /// The chaos schedule configuration (its own seed).
    pub chaos: ChaosConfig,
    /// Central allocation policy under comparison.
    pub policy: GovernorPolicy,
    /// Global fleet power budget, watts.
    pub budget_w: f64,
    /// Latency SLO as a multiple of the unloaded max-frequency service
    /// time (per machine).
    pub slo_factor: f64,
    /// Slowdown bound of the degraded local DEP+BURST governor.
    pub local_slowdown: f64,
    /// Degradation-ladder thresholds.
    pub degradation: DegradationConfig,
    /// Benchmark pool; machine `i` runs `benches[i % benches.len()]`.
    pub benches: Vec<&'static Benchmark>,
}

impl FleetConfig {
    /// A fleet with the default knobs: every benchmark in rotation, no
    /// chaos, oracle policy, a budget of 60 W per machine.
    #[must_use]
    pub fn new(machines: usize, shards: usize, rounds: usize, scale: f64, seed: u64) -> Self {
        FleetConfig {
            machines: machines.max(1),
            shards,
            rounds,
            scale,
            seed,
            chaos: ChaosConfig::none(seed),
            policy: GovernorPolicy::Oracle,
            budget_w: 60.0 * machines.max(1) as f64,
            slo_factor: 2.0,
            local_slowdown: 0.10,
            degradation: DegradationConfig::default(),
            benches: all_benchmarks().iter().collect(),
        }
    }
}

/// The V/f ladder of machine `m` — heterogeneous by position so the
/// central governor and the membership proptests face three distinct
/// ladders, all inside the paper's 1–4 GHz envelope.
#[must_use]
pub fn machine_ladder(machine: usize) -> FreqLadder {
    match machine % 3 {
        0 => FreqLadder::paper_default(),
        1 => FreqLadder::new(Freq::from_ghz(1.0), Freq::from_ghz(3.5), 250)
            .expect("1–3.5 GHz / 250 MHz ladder"),
        _ => FreqLadder::new(Freq::from_mhz(1250), Freq::from_mhz(3750), 125)
            .expect("1.25–3.75 GHz / 125 MHz ladder"),
    }
}

/// One characterization point the fleet executed (exact golden-grid
/// points at the golden scale/seed — tests compare these byte-for-byte).
#[derive(Debug, Clone)]
pub struct CharactPoint {
    /// Benchmark name.
    pub bench: String,
    /// Characterization frequency, GHz.
    pub ghz: f64,
    /// The memoized summary.
    pub summary: Arc<RunSummary>,
}

/// Per-machine fleet outcome.
#[derive(Debug, Clone, Serialize)]
pub struct MachineRow {
    /// Fleet-wide machine id.
    pub machine: usize,
    /// Owning shard.
    pub shard: usize,
    /// The benchmark this machine serves.
    pub benchmark: String,
    /// Rounds spent under central control.
    pub rounds_central: u32,
    /// Rounds self-governed by the local DEP+BURST policy.
    pub rounds_local: u32,
    /// Rounds pinned at the hardened fallback maximum.
    pub rounds_fallback: u32,
    /// Rounds down (crashed) — partial by design.
    pub rounds_down: u32,
    /// Crash outages the chaos schedule dealt this machine.
    pub crashes: u32,
    /// Requests served.
    pub served: f64,
    /// Requests shed while down.
    pub shed: f64,
    /// Fraction of up-rounds meeting the latency SLO.
    pub slo_attainment: f64,
    /// Mean per-request latency over up-rounds, seconds.
    pub mean_latency_s: f64,
    /// Energy consumed, joules.
    pub energy_j: f64,
    /// Every degradation-ladder transition, rendered.
    pub transitions: Vec<String>,
}

/// Fleet-level aggregates.
#[derive(Debug, Clone, Serialize)]
pub struct FleetSummary {
    /// Machines simulated.
    pub machines: usize,
    /// Shards.
    pub shards: usize,
    /// Rounds simulated.
    pub rounds: usize,
    /// Allocation policy name.
    pub policy: String,
    /// Chaos seed.
    pub chaos_seed: u64,
    /// Crash outages fleet-wide.
    pub crash_events: usize,
    /// Partition outages fleet-wide.
    pub partition_events: usize,
    /// Global power budget, watts.
    pub budget_w: f64,
    /// Rounds where actual fleet power exceeded the budget (plus
    /// tolerance) — the naive policy's signature failure.
    pub overshoot_rounds: usize,
    /// Total requests served.
    pub served: f64,
    /// Total requests shed.
    pub shed: f64,
    /// Served-weighted mean SLO attainment over machines.
    pub slo_attainment: f64,
    /// Fleet energy, joules.
    pub energy_j: f64,
    /// Machine-rounds spent below central control (local + fallback +
    /// down).
    pub degraded_machine_rounds: u64,
}

/// The serializable fleet report.
#[derive(Debug, Clone, Serialize)]
pub struct FleetReport {
    /// Per-machine rows, in machine order.
    pub machines: Vec<MachineRow>,
    /// Fleet aggregates.
    pub summary: FleetSummary,
}

/// Everything a fleet run produces: the report plus the raw
/// characterization points (for golden-identity tests).
#[derive(Debug, Clone)]
pub struct FleetOutcome {
    /// The report.
    pub report: FleetReport,
    /// The characterization points, in execution order.
    pub charact: Vec<CharactPoint>,
}

/// Static per-machine parameters plus mutable round state; owned by the
/// machine's shard and moved through the pool every round.
#[derive(Debug, Clone)]
struct MachineState {
    id: usize,
    shard: usize,
    bench: &'static str,
    ladder: FreqLadder,
    scaling_s: f64,
    fixed_s: f64,
    cores: usize,
    slo_s: f64,
    cap_max: f64,
    alloc_per_req: f64,
    bytes_per_gc: f64,
    gc_pause_s: f64,
    traffic_seed: u64,
    local: LocalGovernor,
    // Mutable round state.
    ladder_state: DegradationLadder,
    freq: Freq,
    backlog: f64,
    alloc_acc: f64,
    pending_gc_s: f64,
    was_crashed: bool,
    // Accumulators.
    rounds_central: u32,
    rounds_local: u32,
    rounds_fallback: u32,
    rounds_down: u32,
    crashes: u32,
    served: f64,
    shed: f64,
    lat_sum: f64,
    lat_rounds: u32,
    slo_ok: u32,
    energy_j: f64,
}

/// What one machine reports after a round (the telemetry payload plus
/// the fleet-side accounting inputs).
#[derive(Debug, Clone, Copy)]
struct RoundOut {
    machine: usize,
    /// Mode the round ran under; `None` = down.
    mode: Option<GovernorMode>,
    /// Backlog after the round (the telemetry content).
    backlog: f64,
    /// Frequency the round ran at (ladder-membership check).
    freq: Freq,
    /// Energy spent this round, joules.
    energy: f64,
}

/// One shard's step input: its machine states plus each machine's
/// per-round (chaos, central assignment) pair.
type ShardStep = (Vec<MachineState>, Vec<(ChaosState, Option<Freq>)>);

/// A delayed telemetry datagram on the governor's ingest queue.
#[derive(Debug, Clone, Copy)]
struct Telemetry {
    due: usize,
    backlog: f64,
    mode: GovernorMode,
}

/// The governor's last-known view of one machine.
#[derive(Debug, Clone, Copy)]
struct Known {
    backlog: f64,
    mode: GovernorMode,
}

fn violation(invariant: Invariant, round: usize, detail: String) -> depburst_core::DepburstError {
    InvariantViolation {
        invariant,
        at_secs: round as f64 * ROUND_SECS,
        detail,
    }
    .to_error()
}

/// This round's arrival count for one machine: a diurnal-ish wave over
/// [`BASE_UTIL`] of max-frequency capacity, with seeded jitter and rare
/// bursts. Stateless — a pure function of (traffic seed, round) — so
/// shard stepping order can never perturb it.
fn arrivals(state: &MachineState, round: usize) -> f64 {
    let mut rng = SplitMix64::new(
        state.traffic_seed ^ (round as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15),
    );
    let wave = 1.0 + 0.3 * (TAU * (round % 32) as f64 / 32.0).sin();
    let burst = if rng.chance(0.1) { 1.8 } else { 1.0 };
    let jitter = 1.0 + 0.1 * rng.next_signed();
    BASE_UTIL * state.cap_max * wave * burst * jitter
}

/// Steps one machine through one round: degradation-ladder observation,
/// frequency selection, request service with GC debt, and metric
/// accumulation. Pure in (state, round, chaos, central assignment).
fn step_machine(
    state: &mut MachineState,
    round: usize,
    chaos: ChaosState,
    central: Option<Freq>,
    model: &PowerModel,
) -> RoundOut {
    if chaos.crashed {
        if !state.was_crashed {
            state.crashes += 1;
            // A restart reboots into the hardened fallback whatever the
            // mode was; re-earning central control takes full healthy
            // windows.
            state.ladder_state.force_fallback(round as u64, "crash-restart");
            state.freq = state.ladder.max();
        }
        state.was_crashed = true;
        state.shed += state.backlog + arrivals(state, round);
        state.backlog = 0.0;
        state.alloc_acc = 0.0;
        state.pending_gc_s = 0.0;
        state.rounds_down += 1;
        return RoundOut {
            machine: state.id,
            mode: None,
            backlog: 0.0,
            freq: state.ladder.max(),
            energy: 0.0,
        };
    }
    state.was_crashed = false;

    let mode = state
        .ladder_state
        .observe(round as u64, !chaos.partitioned, !chaos.telemetry_lost);
    let view = MachineView {
        id: state.id,
        ladder: &state.ladder,
        scaling_s: state.scaling_s,
        fixed_s: state.fixed_s,
        cores: state.cores,
    };
    let freq = match mode {
        GovernorMode::Central => {
            // A fresh assignment only lands when the control link is up;
            // otherwise the machine holds its last allocated frequency.
            if let Some(f) = central {
                if !chaos.partitioned {
                    state.freq = state.ladder.floor(f);
                }
            }
            state.freq
        }
        GovernorMode::LocalDepBurst => state.local.choose(&view),
        GovernorMode::FallbackMax => state.ladder.max(),
    };
    state.freq = freq;
    match mode {
        GovernorMode::Central => state.rounds_central += 1,
        GovernorMode::LocalDepBurst => state.rounds_local += 1,
        GovernorMode::FallbackMax => state.rounds_fallback += 1,
    }

    // Service: capacity is the round minus last round's GC debt.
    let service_s = view.service_time(freq);
    let budget_s = (ROUND_SECS - state.pending_gc_s).max(ROUND_SECS * 0.25);
    state.pending_gc_s = 0.0;
    let mu = budget_s / service_s;
    let arr = arrivals(state, round);
    let demand = state.backlog + arr;
    let served = demand.min(mu);
    state.backlog = demand - served;

    // GC debt for the next round: served requests allocate; full heaps
    // collect at the characterized (non-scaling) pause.
    if state.bytes_per_gc > 0.0 {
        state.alloc_acc += served * state.alloc_per_req;
        let gcs = (state.alloc_acc / state.bytes_per_gc).floor();
        if gcs > 0.0 {
            state.alloc_acc -= gcs * state.bytes_per_gc;
            state.pending_gc_s = (gcs * state.gc_pause_s).min(ROUND_SECS * 0.75);
        }
    }

    let latency = service_s * (1.0 + state.backlog / mu.max(1e-12));
    let util = (served / mu.max(1e-12)).min(1.0);
    let power = model.power(freq, &vec![util; state.cores]).total();
    let energy = power * ROUND_SECS;

    state.served += served;
    state.lat_sum += latency;
    state.lat_rounds += 1;
    state.slo_ok += u32::from(latency <= state.slo_s);
    state.energy_j += energy;

    RoundOut {
        machine: state.id,
        mode: Some(mode),
        backlog: state.backlog,
        freq,
        energy,
    }
}

/// Runs the fleet on `ctx`: characterization through the memoized,
/// journaled point pipeline (per-shard namespaces), then the round loop
/// with per-shard parallel stepping. The outcome is a pure function of
/// the config — any worker count, any cache temperature.
///
/// # Errors
/// Characterization failures propagate as the usual sweep errors; a
/// power-budget or rejoin-monotonicity violation surfaces as
/// `DepburstError::InvariantViolation`.
pub fn run_with(ctx: &ExecCtx, config: &FleetConfig) -> depburst_core::Result<FleetOutcome> {
    let topo = FleetTopology::new(config.machines, config.shards, config.seed);
    let machines = topo.machines;
    let bench_of: Vec<&'static Benchmark> = (0..machines)
        .map(|m| config.benches[m % config.benches.len()])
        .collect();

    // Characterization: per shard (its own journal namespace), each
    // distinct benchmark at 1 GHz and 4 GHz. The memo cache collapses
    // repeats across shards into one simulation each.
    let mut charact = Vec::new();
    let mut fit: BTreeMap<&'static str, (Arc<RunSummary>, Arc<RunSummary>)> = BTreeMap::new();
    for shard in 0..topo.shards {
        let mut names: Vec<&'static Benchmark> = Vec::new();
        for m in topo.machines_in(shard) {
            if !names.iter().any(|b| b.name == bench_of[m].name) {
                names.push(bench_of[m]);
            }
        }
        let mut plan = SweepPlan::new();
        for bench in &names {
            for ghz in [1.0, 4.0] {
                plan.push(SimPoint::new(
                    bench,
                    Freq::from_ghz(ghz),
                    config.scale,
                    config.seed,
                ));
            }
        }
        let namespace = format!("shard{shard}");
        let results = ctx.execute_in(Some(&namespace), &plan)?;
        for (i, bench) in names.iter().enumerate() {
            let t1 = results[2 * i].clone();
            let t4 = results[2 * i + 1].clone();
            charact.push(CharactPoint {
                bench: bench.name.to_owned(),
                ghz: 1.0,
                summary: t1.clone(),
            });
            charact.push(CharactPoint {
                bench: bench.name.to_owned(),
                ghz: 4.0,
                summary: t4.clone(),
            });
            fit.entry(bench.name).or_insert((t1, t4));
        }
    }

    let model = PowerModel::haswell_22nm();
    let cores = simx::MachineConfig::haswell_quad().cores;
    let schedule = ChaosSchedule::generate(&config.chaos, machines, config.rounds);

    // Per-shard machine state.
    let mut shards: Vec<Vec<MachineState>> = (0..topo.shards)
        .map(|shard| {
            topo.machines_in(shard)
                .map(|m| {
                    let bench = bench_of[m];
                    let (t1, t4) = &fit[bench.name];
                    let (t1, t4) = (t1.exec.as_secs(), t4.exec.as_secs());
                    // Two-point DEP+BURST fit: T(f) = A / f_ghz + B.
                    let a = ((t1 - t4) * 4.0 / 3.0).max(0.0);
                    let b = (t4 - a / 4.0).max(t4 * 0.01).max(1e-9);
                    let ladder = machine_ladder(m);
                    let scaling_s = a / REQS;
                    let fixed_s = b / REQS;
                    let s_max = scaling_s / ladder.max().ghz() + fixed_s;
                    let summary4 = &fit[bench.name].1;
                    let gc_count = summary4.gc_count as f64;
                    MachineState {
                        id: m,
                        shard,
                        bench: bench.name,
                        scaling_s,
                        fixed_s,
                        cores,
                        slo_s: config.slo_factor * s_max,
                        cap_max: ROUND_SECS / s_max,
                        alloc_per_req: summary4.allocated as f64 / REQS,
                        bytes_per_gc: if gc_count > 0.0 {
                            summary4.allocated as f64 / gc_count
                        } else {
                            0.0
                        },
                        gc_pause_s: if gc_count > 0.0 {
                            summary4.gc_time.as_secs() / gc_count
                        } else {
                            0.0
                        },
                        traffic_seed: topo.machine_seed(m) ^ TRAFFIC_SALT,
                        local: LocalGovernor::new(config.local_slowdown),
                        ladder_state: DegradationLadder::new(config.degradation),
                        freq: ladder.max(),
                        ladder,
                        backlog: 0.0,
                        alloc_acc: 0.0,
                        pending_gc_s: 0.0,
                        was_crashed: false,
                        rounds_central: 0,
                        rounds_local: 0,
                        rounds_fallback: 0,
                        rounds_down: 0,
                        crashes: 0,
                        served: 0.0,
                        shed: 0.0,
                        lat_sum: 0.0,
                        lat_rounds: 0,
                        slo_ok: 0,
                        energy_j: 0.0,
                    }
                })
                .collect()
        })
        .collect();

    let governor = CentralGovernor::new(config.budget_w);
    // The governor's delayed-telemetry ingest (DepBurst policy): what it
    // currently believes, and the in-flight datagrams.
    let mut known: Vec<Known> = (0..machines)
        .map(|_| Known {
            backlog: 0.0,
            mode: GovernorMode::Central,
        })
        .collect();
    let mut inflight: Vec<VecDeque<Telemetry>> = vec![VecDeque::new(); machines];
    let mut prev_backlog: Vec<f64> = vec![0.0; machines];
    let mut overshoot_rounds = 0usize;

    for round in 0..config.rounds {
        // Deliver due telemetry.
        for (m, queue) in inflight.iter_mut().enumerate() {
            while queue.front().is_some_and(|t| t.due <= round) {
                let t = queue.pop_front().expect("front checked");
                known[m] = Known {
                    backlog: t.backlog,
                    mode: t.mode,
                };
            }
        }

        // Central allocation for this round's batch.
        let mut assigned: Vec<Option<Freq>> = vec![None; machines];
        let mut alloc_check: Option<(f64, f64)> = None;
        match config.policy {
            GovernorPolicy::NaiveStatic => {
                // No budget awareness: central says "maximum" to every
                // reachable machine.
                for states in &shards {
                    for s in states {
                        assigned[s.id] = Some(s.ladder.max());
                    }
                }
            }
            GovernorPolicy::Oracle | GovernorPolicy::DepBurst => {
                // Candidates: machines the governor believes are under
                // central control and can reach right now. The oracle
                // reads true state; DepBurst trusts its (possibly stale,
                // lossy, delayed) telemetry.
                let mut ids = Vec::new();
                let mut loads = Vec::new();
                for states in &shards {
                    for s in states {
                        let chaos = schedule.state(round, s.id);
                        if chaos.crashed || chaos.partitioned {
                            continue;
                        }
                        let (mode, backlog) = match config.policy {
                            GovernorPolicy::Oracle => (s.ladder_state.mode(), s.backlog),
                            _ => (known[s.id].mode, known[s.id].backlog),
                        };
                        if mode == GovernorMode::Central {
                            ids.push(s.id);
                            loads.push((s, backlog));
                        }
                    }
                }
                let views: Vec<MachineView<'_>> = loads
                    .iter()
                    .map(|(s, backlog)| MachineView {
                        id: s.id,
                        ladder: &s.ladder,
                        // Load-weighted demand: queued machines look
                        // slower, so the latency-levelling allocator
                        // feeds them first.
                        scaling_s: s.scaling_s * (1.0 + backlog / s.cap_max),
                        fixed_s: s.fixed_s,
                        cores: s.cores,
                    })
                    .collect();
                if !views.is_empty() {
                    let alloc = governor.allocate(&model, &views, machines);
                    for (id, freq) in ids.iter().zip(&alloc.freqs) {
                        assigned[*id] = Some(*freq);
                    }
                    alloc_check = Some((alloc.power_w, alloc.available_w));
                }
            }
        }
        if let Some((power_w, available_w)) = alloc_check {
            if power_w > available_w * (1.0 + 1e-9) + 1e-9 {
                return Err(violation(
                    Invariant::PowerBudgetConservation,
                    round,
                    format!(
                        "central allocation estimates {power_w:.1} W over a \
                         {available_w:.1} W slice"
                    ),
                ));
            }
        }

        // Parallel shard step: pure per-machine functions, plan order.
        let inputs: Vec<ShardStep> = shards
            .drain(..)
            .map(|states| {
                let ins = states
                    .iter()
                    .map(|s| (schedule.state(round, s.id), assigned[s.id]))
                    .collect();
                (states, ins)
            })
            .collect();
        let stepped: Vec<(Vec<MachineState>, Vec<RoundOut>)> =
            ctx.map(inputs, |(mut states, ins)| {
                let outs = states
                    .iter_mut()
                    .zip(&ins)
                    .map(|(state, &(chaos, central))| {
                        step_machine(state, round, chaos, central, &model)
                    })
                    .collect();
                (states, outs)
            });

        // Gather: ladder membership, power accounting, telemetry batch.
        let mut round_power = 0.0;
        for (states, outs) in &stepped {
            for (state, out) in states.iter().zip(outs) {
                if !state.ladder.contains(out.freq) {
                    return Err(violation(
                        Invariant::LadderMembership,
                        round,
                        format!("machine {} ran off-ladder at {}", out.machine, out.freq),
                    ));
                }
                round_power += out.energy / ROUND_SECS;
                let chaos = schedule.state(round, out.machine);
                if let Some(mode) = out.mode {
                    if !chaos.telemetry_lost {
                        // Stale harvests deliver the previous round's
                        // value; slow links arrive late; both on
                        // time-ordered queues so delivery order is
                        // deterministic.
                        let content = if chaos.stale {
                            prev_backlog[out.machine]
                        } else {
                            out.backlog
                        };
                        inflight[out.machine].push_back(Telemetry {
                            due: round + 1 + chaos.link_delay as usize,
                            backlog: content,
                            mode,
                        });
                    }
                }
                prev_backlog[out.machine] = out.backlog;
            }
        }
        if round_power > config.budget_w * (1.0 + OVERSHOOT_REL_TOL) {
            overshoot_rounds += 1;
        }
        shards = stepped.into_iter().map(|(states, _)| states).collect();
    }

    // Post-run invariants and report assembly.
    let mut rows = Vec::with_capacity(machines);
    for states in &shards {
        for s in states {
            if let Some(issue) = s.ladder_state.monotonicity_issue() {
                return Err(violation(
                    Invariant::RejoinMonotonicity,
                    config.rounds,
                    format!("machine {}: {issue}", s.id),
                ));
            }
            rows.push(MachineRow {
                machine: s.id,
                shard: s.shard,
                benchmark: s.bench.to_owned(),
                rounds_central: s.rounds_central,
                rounds_local: s.rounds_local,
                rounds_fallback: s.rounds_fallback,
                rounds_down: s.rounds_down,
                crashes: s.crashes,
                served: s.served,
                shed: s.shed,
                slo_attainment: if s.lat_rounds > 0 {
                    f64::from(s.slo_ok) / f64::from(s.lat_rounds)
                } else {
                    0.0
                },
                mean_latency_s: if s.lat_rounds > 0 {
                    s.lat_sum / f64::from(s.lat_rounds)
                } else {
                    0.0
                },
                energy_j: s.energy_j,
                transitions: s
                    .ladder_state
                    .transitions()
                    .iter()
                    .map(|t| t.to_string())
                    .collect(),
            });
        }
    }
    rows.sort_by_key(|r| r.machine);

    let served: f64 = rows.iter().map(|r| r.served).sum();
    let shed: f64 = rows.iter().map(|r| r.shed).sum();
    let energy_j: f64 = rows.iter().map(|r| r.energy_j).sum();
    let slo = if served > 0.0 {
        rows.iter().map(|r| r.slo_attainment * r.served).sum::<f64>() / served
    } else {
        0.0
    };
    let degraded: u64 = rows
        .iter()
        .map(|r| u64::from(r.rounds_local + r.rounds_fallback + r.rounds_down))
        .sum();

    let summary = FleetSummary {
        machines,
        shards: topo.shards,
        rounds: config.rounds,
        policy: config.policy.name().to_owned(),
        chaos_seed: config.chaos.seed,
        crash_events: schedule.crash_events(),
        partition_events: schedule.partition_events(),
        budget_w: config.budget_w,
        overshoot_rounds,
        served,
        shed,
        slo_attainment: slo,
        energy_j,
        degraded_machine_rounds: degraded,
    };
    Ok(FleetOutcome {
        report: FleetReport {
            machines: rows,
            summary,
        },
        charact,
    })
}

/// Renders the fleet report as the experiment's text table plus the
/// summary block.
#[must_use]
pub fn render(report: &FleetReport) -> String {
    let mut table = TextTable::new(&[
        "machine", "shard", "bench", "central", "local", "fallback", "down", "crashes", "slo",
        "lat(ms)", "energy(J)", "transitions",
    ]);
    for r in &report.machines {
        table.row(vec![
            r.machine.to_string(),
            r.shard.to_string(),
            r.benchmark.clone(),
            r.rounds_central.to_string(),
            r.rounds_local.to_string(),
            r.rounds_fallback.to_string(),
            r.rounds_down.to_string(),
            r.crashes.to_string(),
            format!("{:.1}%", r.slo_attainment * 100.0),
            format!("{:.2}", r.mean_latency_s * 1e3),
            format!("{:.1}", r.energy_j),
            r.transitions.len().to_string(),
        ]);
    }
    let s = &report.summary;
    format!(
        "{}\nfleet: {} machines / {} shards, {} rounds, policy {} \
         (chaos seed {})\n\
         outages: {} crashes, {} partitions; degraded machine-rounds: {}\n\
         budget {:.0} W, overshoot rounds: {}\n\
         served {:.0}, shed {:.0}, SLO attainment {:.1}%, energy {:.1} J\n",
        table.render(),
        s.machines,
        s.shards,
        s.rounds,
        s.policy,
        s.chaos_seed,
        s.crash_events,
        s.partition_events,
        s.degraded_machine_rounds,
        s.budget_w,
        s.overshoot_rounds,
        s.served,
        s.shed,
        s.slo_attainment * 100.0,
        s.energy_j,
    )
}

/// Runs a fleet sequentially (tests and quick scripts).
///
/// # Panics
/// Panics if the run fails; prefer [`run_with`] in binaries.
#[must_use]
pub fn run(config: &FleetConfig) -> FleetOutcome {
    run_with(&ExecCtx::sequential(), config).unwrap_or_else(|e| panic!("fleet: {e}"))
}
