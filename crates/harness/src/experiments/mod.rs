//! One module per table/figure of the paper.

pub mod ablation;
pub mod table1;
pub mod table2;

pub mod fig1;
pub mod fig3;
pub mod fig4;
pub mod fig6;
pub mod fig7;
pub mod percore;

pub mod faults;
pub mod fleet;
pub mod thermal;

pub mod sampling_error;

pub mod torture;
