//! Figure 3: per-benchmark DVFS prediction errors for M+CRIT, COOP and
//! DEP, each with and without BURST.
//!
//! (a) base 1 GHz, targets 2/3/4 GHz (predicting at higher frequency);
//! (b) base 4 GHz, targets 1/2/3 GHz (predicting at lower frequency).
//!
//! The grid executes on [`crate::run::ExecCtx`], which makes the figure
//! complete-or-failed: every surviving point is simulated (and
//! cached/journaled) before a dead point surfaces as `SweepIncomplete`,
//! so an interrupted or partially failed sweep resumes from its
//! checkpoint journal instead of restarting.

use dacapo_sim::all_benchmarks;
use depburst::{paper_roster, relative_error, ErrorStats};
use dvfs_trace::Freq;
use serde::Serialize;

use crate::report::{pct, pct_abs, TextTable};
use crate::run::{ExecCtx, SimPoint, SweepPlan};

/// Prediction direction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Direction {
    /// Base 1 GHz, predict 2/3/4 GHz (Fig. 3a).
    LowToHigh,
    /// Base 4 GHz, predict 1/2/3 GHz (Fig. 3b).
    HighToLow,
}

impl Direction {
    /// The base frequency of this direction.
    #[must_use]
    pub fn base(self) -> Freq {
        match self {
            Direction::LowToHigh => Freq::from_ghz(1.0),
            Direction::HighToLow => Freq::from_ghz(4.0),
        }
    }

    /// The target frequencies of this direction.
    #[must_use]
    pub fn targets(self) -> [Freq; 3] {
        match self {
            Direction::LowToHigh => [
                Freq::from_ghz(2.0),
                Freq::from_ghz(3.0),
                Freq::from_ghz(4.0),
            ],
            Direction::HighToLow => [
                Freq::from_ghz(3.0),
                Freq::from_ghz(2.0),
                Freq::from_ghz(1.0),
            ],
        }
    }
}

/// One (benchmark, target) cell: the signed error of every model.
#[derive(Debug, Clone, Serialize)]
pub struct Fig3Cell {
    /// Benchmark name.
    pub benchmark: String,
    /// Base frequency (GHz).
    pub base_ghz: f64,
    /// Target frequency (GHz).
    pub target_ghz: f64,
    /// Measured execution time at the target (seconds).
    pub actual_s: f64,
    /// (model name, signed relative error) pairs.
    pub errors: Vec<(String, f64)>,
}

/// Runs the experiment. `seeds` are averaged (the paper averages 4 runs).
///
/// # Panics
/// Panics if a simulated run fails; prefer [`collect_with`] in binaries.
#[must_use]
pub fn collect(direction: Direction, scale: f64, seeds: &[u64]) -> Vec<Fig3Cell> {
    collect_with(&ExecCtx::sequential(), direction, scale, seeds)
        .unwrap_or_else(|e| panic!("fig3: {e}"))
}

/// Runs the experiment on `ctx`'s pool and cache. The plan lists every
/// (benchmark, seed) base run followed by its target runs — the exact
/// order the historical sequential loop executed — and the cells are
/// assembled from the plan-ordered results, so the output is identical
/// for any worker count.
pub fn collect_with(
    ctx: &ExecCtx,
    direction: Direction,
    scale: f64,
    seeds: &[u64],
) -> depburst_core::Result<Vec<Fig3Cell>> {
    let models = paper_roster();
    let targets = direction.targets();
    let mut plan = SweepPlan::new();
    for bench in all_benchmarks() {
        for &seed in seeds {
            plan.push(SimPoint::new(bench, direction.base(), scale, seed));
            for &target in &targets {
                plan.push(SimPoint::new(bench, target, scale, seed));
            }
        }
    }
    let results = ctx.execute(&plan)?;
    let mut next = results.iter();

    let mut cells: Vec<Fig3Cell> = Vec::with_capacity(all_benchmarks().len() * targets.len());
    for bench in all_benchmarks() {
        let mut acc: Vec<Vec<Vec<f64>>> =
            vec![vec![Vec::with_capacity(seeds.len()); models.len()]; targets.len()];
        let mut actuals = vec![0.0f64; targets.len()];
        for _seed in seeds {
            let base = next.next().expect("plan covers base run");
            for (ti, &target) in targets.iter().enumerate() {
                let actual = next.next().expect("plan covers target run");
                actuals[ti] += actual.exec.as_secs() / seeds.len() as f64;
                for (mi, model) in models.iter().enumerate() {
                    let predicted = base.rescale_prediction(model.predict(&base.trace, target));
                    acc[ti][mi].push(relative_error(predicted, actual.exec));
                }
            }
        }
        for (ti, &target) in targets.iter().enumerate() {
            cells.push(Fig3Cell {
                benchmark: bench.name.to_owned(),
                base_ghz: direction.base().ghz(),
                target_ghz: target.ghz(),
                actual_s: actuals[ti],
                errors: models
                    .iter()
                    .enumerate()
                    .map(|(mi, m)| {
                        let errs = &acc[ti][mi];
                        (m.name(), errs.iter().sum::<f64>() / errs.len() as f64)
                    })
                    .collect(),
            });
        }
    }
    Ok(cells)
}

/// Average absolute error per model at a given target frequency.
#[must_use]
pub fn avg_abs_by_model(cells: &[Fig3Cell], target_ghz: f64) -> Vec<(String, f64)> {
    let mut out: Vec<(String, Vec<f64>)> = Vec::new();
    for cell in cells.iter().filter(|c| c.target_ghz == target_ghz) {
        for (name, err) in &cell.errors {
            match out.iter_mut().find(|(n, _)| n == name) {
                Some((_, v)) => v.push(*err),
                None => out.push((name.clone(), vec![*err])),
            }
        }
    }
    out.into_iter()
        .map(|(n, v)| (n, ErrorStats::from_errors(&v).mean_abs))
        .collect()
}

/// Renders the per-benchmark table for one target frequency.
#[must_use]
pub fn render(cells: &[Fig3Cell], target_ghz: f64) -> String {
    let with_target: Vec<&Fig3Cell> = cells
        .iter()
        .filter(|c| c.target_ghz == target_ghz)
        .collect();
    let Some(first) = with_target.first() else {
        return String::new();
    };
    let names: Vec<String> = first.errors.iter().map(|(n, _)| n.clone()).collect();
    let mut header: Vec<&str> = vec!["benchmark"];
    for n in &names {
        header.push(n);
    }
    let mut t = TextTable::new(&header);
    for cell in &with_target {
        let mut row = vec![cell.benchmark.clone()];
        for (_, err) in &cell.errors {
            row.push(pct(*err));
        }
        t.row(row);
    }
    let mut row = vec!["avg |err|".to_owned()];
    for (_, mean) in avg_abs_by_model(cells, target_ghz) {
        row.push(pct_abs(mean));
    }
    t.row(row);
    format!(
        "base {} GHz -> target {} GHz\n{}",
        first.base_ghz,
        target_ghz,
        t.render()
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn directions_have_paper_frequencies() {
        assert_eq!(Direction::LowToHigh.base(), Freq::from_ghz(1.0));
        assert_eq!(Direction::HighToLow.base(), Freq::from_ghz(4.0));
        assert_eq!(Direction::LowToHigh.targets()[2], Freq::from_ghz(4.0));
        assert_eq!(Direction::HighToLow.targets()[2], Freq::from_ghz(1.0));
    }

    #[test]
    fn avg_abs_aggregates_per_model() {
        let cells = vec![
            Fig3Cell {
                benchmark: "a".into(),
                base_ghz: 1.0,
                target_ghz: 4.0,
                actual_s: 1.0,
                errors: vec![("M+CRIT".into(), -0.2), ("DEP+BURST".into(), 0.05)],
            },
            Fig3Cell {
                benchmark: "b".into(),
                base_ghz: 1.0,
                target_ghz: 4.0,
                actual_s: 1.0,
                errors: vec![("M+CRIT".into(), 0.4), ("DEP+BURST".into(), -0.01)],
            },
        ];
        let avg = avg_abs_by_model(&cells, 4.0);
        assert!((avg[0].1 - 0.3).abs() < 1e-12);
        assert!((avg[1].1 - 0.03).abs() < 1e-12);
        // Other targets contribute nothing.
        assert!(avg_abs_by_model(&cells, 2.0).is_empty());
    }

    #[test]
    fn render_includes_all_models_and_benchmarks() {
        let cells = vec![Fig3Cell {
            benchmark: "xalan".into(),
            base_ghz: 1.0,
            target_ghz: 4.0,
            actual_s: 1.0,
            errors: vec![("M+CRIT".into(), -0.271), ("DEP+BURST".into(), 0.06)],
        }];
        let s = render(&cells, 4.0);
        assert!(s.contains("xalan"));
        assert!(s.contains("M+CRIT"));
        assert!(s.contains("-27.1%"));
        assert!(s.contains("avg |err|"));
        assert!(render(&cells, 3.0).is_empty());
    }
}
