//! Figure 6: per-benchmark slowdown and energy savings of the DEP+BURST
//! energy manager at a user-specified slowdown threshold (5% / 10%).

use dacapo_sim::{all_benchmarks, BenchClass, Benchmark};
use depburst::Dep;
use dvfs_trace::Freq;
use energyx::{EnergyManager, ManagerConfig, PowerModel};
use serde::Serialize;
use simx::{Machine, MachineConfig};

use crate::report::{pct, TextTable};
use crate::run::{ExecCtx, SimPoint, SweepPlan};

/// One benchmark's managed-run outcome.
#[derive(Debug, Clone, Serialize)]
pub struct Fig6Row {
    /// Benchmark name.
    pub benchmark: String,
    /// "M" or "C".
    pub class: String,
    /// The user-specified threshold.
    pub threshold: f64,
    /// Measured slowdown vs. always running at 4 GHz.
    pub slowdown: f64,
    /// Energy savings vs. always running at 4 GHz (positive = saved).
    pub savings: f64,
    /// Time-weighted mean frequency under management (GHz).
    pub mean_ghz: f64,
}

/// Runs the max-frequency baseline for a benchmark: returns
/// (execution seconds, energy joules).
///
/// # Panics
/// Panics if the run fails; prefer [`baseline_with`] in binaries.
#[must_use]
pub fn baseline(bench: &Benchmark, scale: f64, seed: u64, power: &PowerModel) -> (f64, f64) {
    baseline_with(&ExecCtx::sequential(), bench, scale, seed, power)
        .unwrap_or_else(|e| panic!("fig6 baseline: {e}"))
}

/// The max-frequency baseline on `ctx` — a single cacheable point every
/// energy experiment shares.
pub fn baseline_with(
    ctx: &ExecCtx,
    bench: &Benchmark,
    scale: f64,
    seed: u64,
    power: &PowerModel,
) -> depburst_core::Result<(f64, f64)> {
    let f4 = Freq::from_ghz(4.0);
    let mut plan = SweepPlan::new();
    let Some(bench) = dacapo_sim::benchmark(bench.name) else {
        return Err(depburst_core::DepburstError::Machine {
            detail: format!("unknown benchmark {}", bench.name),
        });
    };
    plan.push(SimPoint::new(bench, f4, scale, seed));
    let result = &ctx.execute(&plan)?[0];
    let cores = MachineConfig::haswell_quad().cores;
    let energy = power.energy_of_run(f4, result.exec, result.total_active, cores);
    Ok((result.exec.as_secs(), energy))
}

/// Runs one benchmark under the DEP+BURST energy manager.
///
/// # Panics
/// Panics if a run fails; prefer [`managed_with`] in binaries.
#[must_use]
pub fn managed(bench: &Benchmark, scale: f64, seed: u64, threshold: f64) -> Fig6Row {
    managed_with(&ExecCtx::sequential(), bench, scale, seed, threshold)
        .unwrap_or_else(|e| panic!("fig6 managed: {e}"))
}

/// One managed run on `ctx`. The baseline is memoized; the managed run
/// itself is not (the manager mutates frequency mid-run, so its machine
/// is not a plain cacheable point).
pub fn managed_with(
    ctx: &ExecCtx,
    bench: &Benchmark,
    scale: f64,
    seed: u64,
    threshold: f64,
) -> depburst_core::Result<Fig6Row> {
    let config = ManagerConfig::with_threshold(threshold);
    let (base_exec, base_energy) = baseline_with(ctx, bench, scale, seed, &config.power)?;

    let mut mc = MachineConfig::haswell_quad();
    mc.initial_freq = Freq::from_ghz(4.0);
    let mut machine = Machine::new(mc);
    bench.install(&mut machine, scale, seed);
    let manager = EnergyManager::new(config, Box::new(Dep::dep_burst()));
    let report = manager.run(&mut machine)?;

    Ok(Fig6Row {
        benchmark: bench.name.to_owned(),
        class: match bench.class {
            BenchClass::Memory => "M".to_owned(),
            BenchClass::Compute => "C".to_owned(),
        },
        threshold,
        slowdown: report.exec.as_secs() / base_exec - 1.0,
        savings: 1.0 - report.energy_j / base_energy,
        mean_ghz: report.mean_ghz(),
    })
}

/// Runs all benchmarks at one threshold.
///
/// # Panics
/// Panics if a run fails; prefer [`collect_with`] in binaries.
#[must_use]
pub fn collect(threshold: f64, scale: f64, seed: u64) -> Vec<Fig6Row> {
    collect_with(&ExecCtx::sequential(), threshold, scale, seed)
        .unwrap_or_else(|e| panic!("fig6: {e}"))
}

/// Runs all benchmarks at one threshold on `ctx`'s pool; managed runs
/// execute one per worker, rows return in benchmark order. Each
/// benchmark runs under the context's resilience stack (panic isolation,
/// watchdog, retry): the figure is complete-or-failed, so every
/// surviving benchmark finishes (and is cached/journaled) before a dead
/// one turns the sweep into `SweepIncomplete`.
pub fn collect_with(
    ctx: &ExecCtx,
    threshold: f64,
    scale: f64,
    seed: u64,
) -> depburst_core::Result<Vec<Fig6Row>> {
    let benches: Vec<(String, &Benchmark)> = all_benchmarks()
        .iter()
        .map(|b| (format!("fig6 {} @ {:.0}%", b.name, threshold * 100.0), b))
        .collect();
    ctx.collect_resilient(benches, |b, _attempt| {
        managed_with(ctx, b, scale, seed, threshold)
    })
}

/// Mean savings over the memory-intensive benchmarks (the paper's headline
/// aggregates: 13% at 5%, 19% at 10%).
#[must_use]
pub fn memory_mean_savings(rows: &[Fig6Row]) -> f64 {
    let mem: Vec<f64> = rows
        .iter()
        .filter(|r| r.class == "M")
        .map(|r| r.savings)
        .collect();
    if mem.is_empty() {
        0.0
    } else {
        mem.iter().sum::<f64>() / mem.len() as f64
    }
}

/// Renders the table.
#[must_use]
pub fn render(rows: &[Fig6Row]) -> String {
    let Some(first) = rows.first() else {
        return String::new();
    };
    let mut t = TextTable::new(&["benchmark", "type", "slowdown", "energy savings", "mean GHz"]);
    for r in rows {
        t.row(vec![
            r.benchmark.clone(),
            r.class.clone(),
            pct(r.slowdown),
            pct(r.savings),
            format!("{:.2}", r.mean_ghz),
        ]);
    }
    format!(
        "energy manager, tolerable slowdown {:.0}% (memory-intensive mean savings {})\n{}",
        first.threshold * 100.0,
        pct(memory_mean_savings(rows)),
        t.render()
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    fn row(name: &str, class: &str, savings: f64) -> Fig6Row {
        Fig6Row {
            benchmark: name.into(),
            class: class.into(),
            threshold: 0.05,
            slowdown: 0.04,
            savings,
            mean_ghz: 3.5,
        }
    }

    #[test]
    fn memory_mean_ignores_compute_benchmarks() {
        let rows = vec![
            row("xalan", "M", 0.10),
            row("lusearch", "M", 0.20),
            row("sunflow", "C", 0.99),
        ];
        assert!((memory_mean_savings(&rows) - 0.15).abs() < 1e-12);
        assert_eq!(memory_mean_savings(&[]), 0.0);
    }

    #[test]
    fn render_mentions_threshold_and_rows() {
        let rows = vec![row("xalan", "M", 0.13)];
        let s = render(&rows);
        assert!(s.contains("5%"));
        assert!(s.contains("xalan"));
        assert!(s.contains("+13.0%"));
    }
}
