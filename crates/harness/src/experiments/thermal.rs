//! Thermal & power-integrity experiment: hierarchical vs flat-central
//! fleet governance under combined brownout, region-aggregator, and
//! stuck-sensor chaos, with the per-machine RC thermal model armed.
//!
//! The experiment runs one fleet four ways — a 2×2 of governance
//! topology (flat-central vs hierarchical) × chaos weather (calm vs
//! storm) — with identical machines, identical thermal physics, and the
//! same chaos seed. The characterization points are shared through the
//! memo cache, so the whole matrix costs one characterization sweep.
//!
//! The headline metric is **SLO retention**: each topology's storm SLO
//! attainment over its own calm SLO attainment. The hierarchy's claim is
//! that regions run autonomously when the root or a sibling aggregator
//! is down, so a brownout + region-crash storm costs it a few percent;
//! the flat topology funnels every allocation through one root, so the
//! same storm demotes whole swaths to budget-oblivious local control,
//! trips the overshoot breaker, and bleeds SLO. The committed
//! `results/thermal.json` pins both numbers and the `retention_gate`
//! verdict that CI greps.
//!
//! Every run here must also finish with **zero post-emergency ceiling
//! violations** — a run that overheats past its forced-floor ceiling
//! aborts with an `InvariantViolation`, so a written report is itself
//! the proof.

use energyx::{BreakerConfig, GovernorPolicy};
use serde::Serialize;
use simx::fleet::ChaosConfig;
use simx::ThermalConfig;

use crate::experiments::fleet::{self, FleetConfig, FleetReport};
use crate::run::ExecCtx;

/// SLO-retention floor the hierarchical topology must clear under the
/// storm (fraction of its own calm SLO attainment).
pub const RETENTION_FLOOR: f64 = 0.95;

/// The thermal experiment configuration: the shared fleet shape plus
/// the storm's class intensities.
#[derive(Debug, Clone)]
pub struct ThermalConfigExp {
    /// Machines in each scenario's fleet.
    pub machines: usize,
    /// Shards.
    pub shards: usize,
    /// Region aggregators.
    pub regions: usize,
    /// Rounds per scenario.
    pub rounds: usize,
    /// Characterization scale.
    pub scale: f64,
    /// Master seed (workload, thermal sensors, chaos all derive).
    pub seed: u64,
    /// Fleet power budget, watts. Richer than the fleet default so the
    /// calm cells run close to their ladder maxima and the storm's
    /// brownouts, trips, and throttles are what costs SLO.
    pub budget_w: f64,
    /// Brownout intensity of the storm.
    pub brownout: f64,
    /// Region-aggregator/root outage intensity of the storm.
    pub aggregator_crash: f64,
    /// Stuck-sensor intensity of the storm.
    pub sensor_stuck: f64,
}

impl ThermalConfigExp {
    /// The default matrix: 12 machines / 2 shards / 3 regions, 160
    /// rounds, with a heavy brownout + region-crash storm.
    #[must_use]
    pub fn new(machines: usize, rounds: usize, scale: f64, seed: u64) -> Self {
        ThermalConfigExp {
            machines: machines.max(1),
            shards: 2,
            regions: 3,
            rounds,
            scale,
            seed,
            budget_w: machines.max(1) as f64 * 90.0,
            brownout: 0.8,
            aggregator_crash: 0.7,
            sensor_stuck: 0.3,
        }
    }
}

/// One cell of the 2×2 matrix.
#[derive(Debug, Clone, Serialize)]
pub struct Scenario {
    /// Cell name, e.g. `hier-storm`.
    pub name: String,
    /// Hierarchical governance on.
    pub hierarchy: bool,
    /// Storm chaos on.
    pub storm: bool,
    /// The full fleet report of this cell.
    pub report: FleetReport,
}

/// The experiment's verdict block.
#[derive(Debug, Clone, Serialize)]
pub struct ThermalSummary {
    /// Calm SLO attainment, flat topology.
    pub flat_slo_calm: f64,
    /// Storm SLO attainment, flat topology.
    pub flat_slo_storm: f64,
    /// Calm SLO attainment, hierarchical topology.
    pub hier_slo_calm: f64,
    /// Storm SLO attainment, hierarchical topology.
    pub hier_slo_storm: f64,
    /// `flat_slo_storm / flat_slo_calm`.
    pub flat_retention: f64,
    /// `hier_slo_storm / hier_slo_calm`.
    pub hier_retention: f64,
    /// The headline verdict: hierarchy retains at least
    /// [`RETENTION_FLOOR`] of its calm SLO under the storm *and* beats
    /// the flat topology's retention.
    pub retention_gate: bool,
    /// Emergency-throttle engagements across all four cells.
    pub emergency_throttles: u64,
    /// Thermal shutdowns across all four cells.
    pub thermal_shutdowns: u64,
    /// Staggered black-start recoveries across all four cells.
    pub black_starts: u64,
    /// Overshoot-breaker trips across all four cells.
    pub breaker_trips: u64,
    /// Hottest true die temperature any machine reached, milli-°C.
    pub peak_temp_mc: i64,
    /// Post-emergency ceiling violations (always zero in a written
    /// report — a violation aborts the run).
    pub ceiling_violations: u64,
}

/// The serializable thermal report.
#[derive(Debug, Clone, Serialize)]
pub struct ThermalReport {
    /// The four cells, in (flat-calm, flat-storm, hier-calm, hier-storm)
    /// order.
    pub scenarios: Vec<Scenario>,
    /// The verdict block.
    pub summary: ThermalSummary,
}

fn cell_config(exp: &ThermalConfigExp, hierarchy: bool, storm: bool) -> FleetConfig {
    let mut config = FleetConfig::new(exp.machines, exp.shards, exp.rounds, exp.scale, exp.seed);
    config.policy = GovernorPolicy::DepBurst;
    config.budget_w = exp.budget_w;
    // A stricter breaker than the fleet default: budget-oblivious machines
    // under a brownout get floored long enough for the backlog to bite,
    // so power discipline shows up in the SLO column.
    config.breaker = BreakerConfig {
        rel_tol: 0.05,
        hold_rounds: 8,
        stagger_rounds: 2,
    };
    config.regions = exp.regions;
    config.hierarchy = hierarchy;
    config.thermal = ThermalConfig::datacenter(exp.seed);
    let mut chaos = ChaosConfig::none(exp.seed);
    if storm {
        chaos.brownout = exp.brownout;
        chaos.aggregator_crash = exp.aggregator_crash;
        chaos.sensor_stuck = exp.sensor_stuck;
        // Incident-length windows: a grid brownout or control-plane
        // outage lasts long past the ladder's demotion tolerance, so the
        // topologies' containment — not their hold-last-frequency
        // inertia — is what the storm measures.
        chaos.mean_outage_rounds = 16;
    }
    config.chaos = chaos;
    config
}

/// Runs the 2×2 matrix on `ctx` and assembles the verdict.
///
/// # Errors
/// Characterization failures and invariant violations (thermal ceiling,
/// throttle monotonicity, hierarchy budget conservation, …) propagate.
pub fn run_with(
    ctx: &ExecCtx,
    exp: &ThermalConfigExp,
) -> depburst_core::Result<ThermalReport> {
    let mut scenarios = Vec::with_capacity(4);
    for (hierarchy, storm) in [(false, false), (false, true), (true, false), (true, true)] {
        let config = cell_config(exp, hierarchy, storm);
        let outcome = fleet::run_with(ctx, &config)?.report;
        scenarios.push(Scenario {
            name: format!(
                "{}-{}",
                if hierarchy { "hier" } else { "flat" },
                if storm { "storm" } else { "calm" }
            ),
            hierarchy,
            storm,
            report: outcome,
        });
    }
    // The strict lens: down rounds (crash, thermal shutdown) are misses,
    // so a topology cannot look good by shedding its way out of trouble.
    let slo = |h: bool, s: bool| {
        scenarios
            .iter()
            .find(|c| c.hierarchy == h && c.storm == s)
            .map(|c| {
                let sum = &c.report.summary;
                sum.strict_slo_attainment.unwrap_or(sum.slo_attainment)
            })
            .unwrap_or(0.0)
    };
    let (flat_slo_calm, flat_slo_storm) = (slo(false, false), slo(false, true));
    let (hier_slo_calm, hier_slo_storm) = (slo(true, false), slo(true, true));
    let retention = |storm: f64, calm: f64| if calm > 0.0 { storm / calm } else { 0.0 };
    let flat_retention = retention(flat_slo_storm, flat_slo_calm);
    let hier_retention = retention(hier_slo_storm, hier_slo_calm);
    let total = |f: &dyn Fn(&FleetReport) -> u64| -> u64 {
        scenarios.iter().map(|c| f(&c.report)).sum()
    };
    let summary = ThermalSummary {
        flat_slo_calm,
        flat_slo_storm,
        hier_slo_calm,
        hier_slo_storm,
        flat_retention,
        hier_retention,
        retention_gate: hier_retention >= RETENTION_FLOOR && hier_retention > flat_retention,
        emergency_throttles: total(&|r| r.summary.emergency_throttles.unwrap_or(0)),
        thermal_shutdowns: total(&|r| r.summary.thermal_shutdowns.unwrap_or(0)),
        black_starts: total(&|r| r.summary.black_starts.unwrap_or(0)),
        breaker_trips: total(&|r| r.summary.breaker_trips.unwrap_or(0)),
        peak_temp_mc: scenarios
            .iter()
            .filter_map(|c| c.report.summary.peak_temp_mc)
            .max()
            .unwrap_or(0),
        ceiling_violations: 0,
    };
    Ok(ThermalReport { scenarios, summary })
}

/// Renders the verdict block as the experiment's text output.
#[must_use]
pub fn render(report: &ThermalReport) -> String {
    let mut out = String::new();
    for c in &report.scenarios {
        let s = &c.report.summary;
        out.push_str(&format!(
            "{:<11} slo {:>5.1}%  served {:>9.0}  overshoot {:>3}  \
             emergency-throttle {:>3}  black-start {:>3}  breaker {:>3}\n",
            c.name,
            s.strict_slo_attainment.unwrap_or(s.slo_attainment) * 100.0,
            s.served,
            s.overshoot_rounds,
            s.emergency_throttles.unwrap_or(0),
            s.black_starts.unwrap_or(0),
            s.breaker_trips.unwrap_or(0),
        ));
    }
    let s = &report.summary;
    out.push_str(&format!(
        "retention: hier {:.1}% vs flat {:.1}% (floor {:.0}%) → gate {}\n\
         thermal: {} emergency-throttle, {} thermal-shutdown, {} black-start, \
         {} breaker trips, peak {:.1} °C, {} ceiling violations\n",
        s.hier_retention * 100.0,
        s.flat_retention * 100.0,
        RETENTION_FLOOR * 100.0,
        if s.retention_gate { "PASS" } else { "FAIL" },
        s.emergency_throttles,
        s.thermal_shutdowns,
        s.black_starts,
        s.breaker_trips,
        s.peak_temp_mc as f64 / 1000.0,
        s.ceiling_violations,
    ));
    out
}
