//! Append-only checkpoint journal for interruptible sweeps.
//!
//! Every completed simulation point is appended as one JSON line —
//! `{schema, key, summary}` — to `results/checkpoints/<run-id>.jsonl`
//! (directory overridable via `DEPBURST_CHECKPOINT_DIR`), fsynced in
//! batches of [`FLUSH_BATCH`]. A SIGINT'd or crashed sweep restarted with
//! `--resume <run-id>` replays the journaled points instead of
//! re-simulating them, and — because summaries roundtrip JSON with exact
//! f64 bit patterns (asserted by the golden suite) and results assemble
//! in plan order — the resumed run's output is byte-identical to an
//! uninterrupted one (asserted by `tests/determinism.rs` and the CI
//! interrupt-resume step).
//!
//! Torn writes: a run killed mid-append can leave a truncated final line.
//! Replay tolerates it — the fragment is skipped with a warning, the file
//! is re-terminated with a newline so subsequent appends start clean, and
//! the lost point simply re-simulates.

use std::collections::HashMap;
use std::fs::{File, OpenOptions};
use std::io::Write;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use serde::{Deserialize, Serialize};

use crate::cache::{SimKey, SCHEMA_VERSION};
use crate::run::RunSummary;

/// Records appended between fsyncs. Small enough that an interrupt loses
/// at most a few points, large enough to amortize the sync cost over a
/// sweep writing multi-megabyte trace summaries.
pub const FLUSH_BATCH: usize = 4;

/// One journal line. Shares [`SCHEMA_VERSION`] with the disk cache: both
/// persist the same `RunSummary` payload, so they go stale together.
#[derive(Debug, Serialize, Deserialize)]
struct JournalRecord {
    schema: u32,
    key: String,
    summary: RunSummary,
}

#[derive(Debug)]
struct JournalState {
    file: File,
    /// Appends since the last fsync.
    unsynced: usize,
    /// Everything known to be in the journal (replayed + appended).
    seen: HashMap<u128, Arc<RunSummary>>,
}

/// An append-only journal of completed point results, keyed by
/// [`SimKey`]. Shared by reference across pool workers; a coarse mutex is
/// fine because journal traffic is rare next to simulation cost.
#[derive(Debug)]
pub struct Journal {
    path: PathBuf,
    state: Mutex<JournalState>,
    /// Points served from the journal instead of simulating.
    replays: AtomicU64,
    /// Records appended by this process.
    appends: AtomicU64,
    /// Records loaded from the file at open.
    loaded: usize,
}

impl Journal {
    /// The checkpoint directory: `DEPBURST_CHECKPOINT_DIR` or
    /// `results/checkpoints`.
    #[must_use]
    pub fn default_dir() -> PathBuf {
        std::env::var_os("DEPBURST_CHECKPOINT_DIR")
            .map_or_else(|| PathBuf::from("results/checkpoints"), PathBuf::from)
    }

    /// Validates a user-supplied run id (it becomes a file name).
    fn checked_id(run_id: &str) -> std::io::Result<&str> {
        let ok = !run_id.is_empty()
            && run_id.len() <= 128
            && run_id
                .chars()
                .all(|c| c.is_ascii_alphanumeric() || matches!(c, '-' | '_' | '.'))
            && !run_id.starts_with('.');
        if ok {
            Ok(run_id)
        } else {
            Err(std::io::Error::new(
                std::io::ErrorKind::InvalidInput,
                format!("invalid run id {run_id:?} (use [A-Za-z0-9._-], not starting with '.')"),
            ))
        }
    }

    /// The journal path for `run_id` under the default directory.
    pub fn path_for(run_id: &str) -> std::io::Result<PathBuf> {
        Ok(Self::default_dir().join(format!("{}.jsonl", Self::checked_id(run_id)?)))
    }

    /// Starts a fresh journal for `run_id` (truncating any previous one —
    /// a new `--run-id` means a new run).
    pub fn create(run_id: &str) -> std::io::Result<Self> {
        Self::create_at(Self::path_for(run_id)?)
    }

    /// Resumes the journal for `run_id`, replaying its completed points.
    /// A missing journal is not an error — the run starts from nothing,
    /// with a warning.
    pub fn resume(run_id: &str) -> std::io::Result<Self> {
        Self::resume_at(Self::path_for(run_id)?)
    }

    /// [`create`](Self::create) at an explicit path (tests).
    pub fn create_at(path: impl Into<PathBuf>) -> std::io::Result<Self> {
        let path = path.into();
        if let Some(parent) = path.parent() {
            std::fs::create_dir_all(parent)?;
        }
        let file = File::create(&path)?;
        Ok(Journal {
            path,
            state: Mutex::new(JournalState {
                file,
                unsynced: 0,
                seen: HashMap::new(),
            }),
            replays: AtomicU64::new(0),
            appends: AtomicU64::new(0),
            loaded: 0,
        })
    }

    /// [`resume`](Self::resume) at an explicit path (tests).
    pub fn resume_at(path: impl Into<PathBuf>) -> std::io::Result<Self> {
        let path = path.into();
        if !path.exists() {
            eprintln!(
                "warning: no checkpoint journal at {}; starting from scratch",
                path.display()
            );
            return Self::create_at(path);
        }
        let bytes = std::fs::read(&path)?;
        let seen = Self::replay_lines(&path, &bytes);
        let loaded = seen.len();
        let mut file = OpenOptions::new().append(true).open(&path)?;
        if bytes.last().is_some_and(|b| *b != b'\n') {
            // A torn final line: terminate it so our appends start on a
            // fresh line (the fragment stays behind, skipped on replay).
            file.write_all(b"\n")?;
        }
        Ok(Journal {
            path,
            state: Mutex::new(JournalState {
                file,
                unsynced: 0,
                seen,
            }),
            replays: AtomicU64::new(0),
            appends: AtomicU64::new(0),
            loaded,
        })
    }

    /// Tolerant line-by-line replay: skips (with a warning) unparsable
    /// lines — expected for at most the final, torn one — and records
    /// from a different schema version.
    fn replay_lines(path: &Path, bytes: &[u8]) -> HashMap<u128, Arc<RunSummary>> {
        let text = String::from_utf8_lossy(bytes);
        let mut seen = HashMap::new();
        let lines: Vec<&str> = text.split('\n').filter(|l| !l.trim().is_empty()).collect();
        let last = lines.len().saturating_sub(1);
        for (i, line) in lines.iter().enumerate() {
            match serde_json::from_str::<JournalRecord>(line) {
                Ok(record) if record.schema == SCHEMA_VERSION => {
                    match u128::from_str_radix(&record.key, 16) {
                        Ok(key) => {
                            seen.insert(key, Arc::new(record.summary));
                        }
                        Err(_) => eprintln!(
                            "warning: checkpoint journal {}: line {} has a malformed key; skipping",
                            path.display(),
                            i + 1
                        ),
                    }
                }
                Ok(record) => eprintln!(
                    "warning: checkpoint journal {}: line {} has schema {} (want {SCHEMA_VERSION}); skipping",
                    path.display(),
                    i + 1,
                    record.schema
                ),
                Err(parse_err) if i == last => eprintln!(
                    "warning: checkpoint journal {}: final line is truncated (torn write); \
                     that point will re-simulate: {parse_err}",
                    path.display()
                ),
                Err(parse_err) => eprintln!(
                    "warning: checkpoint journal {}: skipping unparsable line {}: {parse_err}",
                    path.display(),
                    i + 1
                ),
            }
        }
        seen
    }

    /// The journal's on-disk path.
    #[must_use]
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Looks up a completed point. Counts a replay on hit.
    #[must_use]
    pub fn lookup(&self, key: SimKey) -> Option<Arc<RunSummary>> {
        let hit = self
            .state
            .lock()
            .expect("journal lock")
            .seen
            .get(&key.0)
            .cloned();
        if hit.is_some() {
            self.replays.fetch_add(1, Ordering::Relaxed);
        }
        hit
    }

    /// Appends a completed point (idempotent: a key already in the
    /// journal — replayed or appended — is skipped). Append errors are
    /// reported once to stderr and otherwise non-fatal: a full disk must
    /// not kill the sweep, it only costs resumability of later points.
    pub fn record(&self, key: SimKey, summary: &Arc<RunSummary>) {
        let mut state = self.state.lock().expect("journal lock");
        if state.seen.contains_key(&key.0) {
            return;
        }
        let record = JournalRecord {
            schema: SCHEMA_VERSION,
            key: key.hex(),
            summary: (**summary).clone(),
        };
        let Ok(mut line) = serde_json::to_string(&record) else {
            eprintln!("warning: checkpoint journal: unserializable record for {}", key.hex());
            return;
        };
        line.push('\n');
        if let Err(write_err) = state.file.write_all(line.as_bytes()) {
            eprintln!(
                "warning: checkpoint journal {}: append failed ({write_err}); \
                 this point will not be resumable",
                self.path.display()
            );
            return;
        }
        state.seen.insert(key.0, Arc::clone(summary));
        state.unsynced += 1;
        if state.unsynced >= FLUSH_BATCH {
            let _ = state.file.sync_data();
            state.unsynced = 0;
        }
        self.appends.fetch_add(1, Ordering::Relaxed);
    }

    /// Flushes and fsyncs any unsynced appends (end of an execute pass).
    pub fn flush(&self) {
        let mut state = self.state.lock().expect("journal lock");
        if state.unsynced > 0 {
            let _ = state.file.sync_data();
            state.unsynced = 0;
        }
    }

    /// Points this process served from the journal.
    #[must_use]
    pub fn replays(&self) -> u64 {
        self.replays.load(Ordering::Relaxed)
    }

    /// Records this process appended.
    #[must_use]
    pub fn appends(&self) -> u64 {
        self.appends.load(Ordering::Relaxed)
    }

    /// Records loaded from the file when the journal was opened.
    #[must_use]
    pub fn loaded(&self) -> usize {
        self.loaded
    }
}

impl Drop for Journal {
    fn drop(&mut self) {
        self.flush();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dvfs_trace::{ExecutionTrace, Freq, Time, TimeDelta};

    fn summary(marker: u64) -> Arc<RunSummary> {
        Arc::new(RunSummary {
            exec: TimeDelta::from_millis(marker as f64 + 0.1),
            gc_time: TimeDelta::ZERO,
            gc_count: marker,
            allocated: marker * 3,
            total_active: TimeDelta::ZERO,
            trace: ExecutionTrace {
                base: Freq::from_ghz(2.0),
                start: Time::ZERO,
                total: TimeDelta::ZERO,
                epochs: vec![],
                markers: vec![],
                threads: vec![],
            },
            sampled: None,
        })
    }

    fn tmp(name: &str) -> PathBuf {
        std::env::temp_dir().join(format!("depburst-journal-{}-{name}.jsonl", std::process::id()))
    }

    #[test]
    fn append_replay_roundtrip() {
        let path = tmp("roundtrip");
        let _ = std::fs::remove_file(&path);
        let journal = Journal::create_at(&path).expect("create");
        for k in 1..=5u64 {
            journal.record(SimKey(u128::from(k)), &summary(k));
        }
        // Idempotent: re-recording an existing key appends nothing.
        journal.record(SimKey(3), &summary(3));
        assert_eq!(journal.appends(), 5);
        drop(journal); // flush

        let resumed = Journal::resume_at(&path).expect("resume");
        assert_eq!(resumed.loaded(), 5);
        for k in 1..=5u64 {
            let s = resumed.lookup(SimKey(u128::from(k))).expect("replayed");
            assert_eq!(s.gc_count, k);
            assert_eq!(s.exec, TimeDelta::from_millis(k as f64 + 0.1));
        }
        assert_eq!(resumed.replays(), 5);
        assert!(resumed.lookup(SimKey(99)).is_none());
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn torn_final_line_is_skipped_and_healed() {
        let path = tmp("torn");
        let _ = std::fs::remove_file(&path);
        let journal = Journal::create_at(&path).expect("create");
        journal.record(SimKey(1), &summary(1));
        journal.record(SimKey(2), &summary(2));
        journal.flush();
        drop(journal);

        // Simulate an interrupt mid-append: a truncated record with no
        // trailing newline.
        let mut bytes = std::fs::read(&path).expect("read");
        bytes.extend_from_slice(br#"{"schema":1,"key":"0000000000000000000000000000"#);
        std::fs::write(&path, &bytes).expect("tear");

        let resumed = Journal::resume_at(&path).expect("torn journals resume");
        assert_eq!(resumed.loaded(), 2, "intact records survive the tear");
        // Appending after the tear must start on a fresh line.
        resumed.record(SimKey(3), &summary(3));
        drop(resumed);

        let healed = Journal::resume_at(&path).expect("resume again");
        assert_eq!(healed.loaded(), 3, "post-tear appends are replayable");
        assert_eq!(healed.lookup(SimKey(3)).expect("new record").gc_count, 3);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn missing_journal_resumes_from_scratch() {
        let path = tmp("missing");
        let _ = std::fs::remove_file(&path);
        let journal = Journal::resume_at(&path).expect("fresh start");
        assert_eq!(journal.loaded(), 0);
        journal.record(SimKey(7), &summary(7));
        drop(journal);
        assert!(path.exists());
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn stale_schema_records_are_ignored() {
        let path = tmp("schema");
        let _ = std::fs::remove_file(&path);
        let journal = Journal::create_at(&path).expect("create");
        journal.record(SimKey(1), &summary(1));
        drop(journal);
        let mut bytes = std::fs::read(&path).expect("read");
        let current = format!("\"schema\":{SCHEMA_VERSION}");
        let text = String::from_utf8(bytes.clone()).expect("utf8");
        assert!(text.contains(&current), "journal must carry the schema tag");
        bytes = text.replace(&current, "\"schema\":999").into_bytes();
        std::fs::write(&path, &bytes).expect("rewrite");
        let resumed = Journal::resume_at(&path).expect("resume");
        assert_eq!(resumed.loaded(), 0, "stale schema must not replay");
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn run_ids_are_validated() {
        assert!(Journal::path_for("fig3-2026-08-06").is_ok());
        assert!(Journal::path_for("").is_err());
        assert!(Journal::path_for("../escape").is_err());
        assert!(Journal::path_for(".hidden").is_err());
        assert!(Journal::path_for("has space").is_err());
    }
}
