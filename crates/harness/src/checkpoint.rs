//! Append-only checkpoint journal for interruptible sweeps.
//!
//! Every completed simulation point is appended as one JSON line —
//! `{schema, key, checksum, summary}` — to
//! `results/checkpoints/<run-id>.jsonl` (directory overridable via
//! `DEPBURST_CHECKPOINT_DIR`), fsynced in batches of [`FLUSH_BATCH`]. A
//! SIGINT'd or crashed sweep restarted with `--resume <run-id>` replays
//! the journaled points instead of re-simulating them, and — because
//! summaries roundtrip JSON with exact f64 bit patterns (asserted by the
//! golden suite) and results assemble in plan order — the resumed run's
//! output is byte-identical to an uninterrupted one (asserted by
//! `tests/determinism.rs` and the CI interrupt-resume step).
//!
//! Torn writes: a run killed mid-append can leave a truncated final line.
//! Replay tolerates it — the fragment is skipped with a warning, the file
//! is re-terminated with a newline so subsequent appends start clean, and
//! the lost point simply re-simulates. The `checksum` field (FNV-1a over
//! the record's serialized summary, shared framing with the disk cache)
//! extends the same fail-closed posture to *silent* corruption: a record
//! whose payload rotted since the write is skipped and counted, never
//! replayed into an experiment's numbers.
//!
//! All file I/O routes through a [`Vfs`] ([`RealVfs`] by default), so the
//! storage-fault torture harness can subject the journal to torn
//! appends, dropped fsyncs, and crash points. Fsync errors are *counted*
//! (surfaced in [`JournalStats`] and the end-of-run report), not
//! swallowed: a journal that cannot sync still works in-process, but the
//! operator learns resumability is at risk.

use std::collections::HashMap;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use serde::{Deserialize, Serialize};

use crate::cache::{compose_envelope, summary_checksum, SimKey, SCHEMA_VERSION};
use crate::run::RunSummary;
use crate::vfs::{RealVfs, Vfs};

/// Records appended between fsyncs. Small enough that an interrupt loses
/// at most a few points, large enough to amortize the sync cost over a
/// sweep writing multi-megabyte trace summaries.
pub const FLUSH_BATCH: usize = 4;

/// One journal line. Shares [`SCHEMA_VERSION`] and the
/// `{schema, key, checksum, summary}` framing with the disk cache: both
/// persist the same `RunSummary` payload, so they go stale together.
#[derive(Debug, Serialize, Deserialize)]
struct JournalRecord {
    schema: u32,
    key: String,
    checksum: String,
    summary: RunSummary,
}

#[derive(Debug)]
struct JournalState {
    /// Appends since the last fsync.
    unsynced: usize,
    /// Everything known to be in the journal (replayed + appended).
    seen: HashMap<u128, Arc<RunSummary>>,
}

/// Counters describing a journal's health, for the end-of-run report.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize)]
pub struct JournalStats {
    /// Records loaded from the file at open.
    pub loaded: usize,
    /// Points served from the journal instead of simulating.
    pub replays: u64,
    /// Records appended by this process.
    pub appends: u64,
    /// Appends that failed (full disk, torn write, crash): those points
    /// are not resumable.
    pub append_failures: u64,
    /// Fsyncs that returned an error: recent appends may not survive a
    /// crash.
    pub fsync_failures: u64,
    /// Lines skipped at open (torn, unparsable, stale schema, or
    /// checksum mismatch).
    pub corrupt_lines: u64,
}

/// An append-only journal of completed point results, keyed by
/// [`SimKey`]. Shared by reference across pool workers; a coarse mutex is
/// fine because journal traffic is rare next to simulation cost.
#[derive(Debug)]
pub struct Journal {
    path: PathBuf,
    vfs: Arc<dyn Vfs>,
    state: Mutex<JournalState>,
    replays: AtomicU64,
    appends: AtomicU64,
    append_failures: AtomicU64,
    fsync_failures: AtomicU64,
    /// Lines skipped during replay at open.
    corrupt_lines: u64,
    /// Records loaded from the file at open.
    loaded: usize,
}

impl Journal {
    /// The checkpoint directory: `DEPBURST_CHECKPOINT_DIR` or
    /// `results/checkpoints`.
    #[must_use]
    pub fn default_dir() -> PathBuf {
        std::env::var_os("DEPBURST_CHECKPOINT_DIR")
            .map_or_else(|| PathBuf::from("results/checkpoints"), PathBuf::from)
    }

    /// Validates a user-supplied run id (it becomes a file name).
    fn checked_id(run_id: &str) -> std::io::Result<&str> {
        let ok = !run_id.is_empty()
            && run_id.len() <= 128
            && run_id
                .chars()
                .all(|c| c.is_ascii_alphanumeric() || matches!(c, '-' | '_' | '.'))
            && !run_id.starts_with('.');
        if ok {
            Ok(run_id)
        } else {
            Err(std::io::Error::new(
                std::io::ErrorKind::InvalidInput,
                format!("invalid run id {run_id:?} (use [A-Za-z0-9._-], not starting with '.')"),
            ))
        }
    }

    /// The journal path for `run_id` under the default directory.
    pub fn path_for(run_id: &str) -> std::io::Result<PathBuf> {
        Ok(Self::default_dir().join(format!("{}.jsonl", Self::checked_id(run_id)?)))
    }

    /// Starts a fresh journal for `run_id` (truncating any previous one —
    /// a new `--run-id` means a new run).
    pub fn create(run_id: &str) -> std::io::Result<Self> {
        Self::create_with(run_id, Arc::new(RealVfs))
    }

    /// [`create`](Self::create) with an explicit storage layer.
    pub fn create_with(run_id: &str, vfs: Arc<dyn Vfs>) -> std::io::Result<Self> {
        Self::create_at_with(Self::path_for(run_id)?, vfs)
    }

    /// Resumes the journal for `run_id`, replaying its completed points.
    /// A missing journal is not an error — the run starts from nothing,
    /// with a warning.
    pub fn resume(run_id: &str) -> std::io::Result<Self> {
        Self::resume_with(run_id, Arc::new(RealVfs))
    }

    /// [`resume`](Self::resume) with an explicit storage layer.
    pub fn resume_with(run_id: &str, vfs: Arc<dyn Vfs>) -> std::io::Result<Self> {
        Self::resume_at_with(Self::path_for(run_id)?, vfs)
    }

    /// [`create`](Self::create) at an explicit path (tests).
    pub fn create_at(path: impl Into<PathBuf>) -> std::io::Result<Self> {
        Self::create_at_with(path, Arc::new(RealVfs))
    }

    /// [`create_at`](Self::create_at) with an explicit storage layer.
    pub fn create_at_with(path: impl Into<PathBuf>, vfs: Arc<dyn Vfs>) -> std::io::Result<Self> {
        let path = path.into();
        if let Some(parent) = path.parent() {
            vfs.create_dir_all(parent)?;
        }
        vfs.write(&path, b"")?;
        Ok(Journal {
            path,
            vfs,
            state: Mutex::new(JournalState {
                unsynced: 0,
                seen: HashMap::new(),
            }),
            replays: AtomicU64::new(0),
            appends: AtomicU64::new(0),
            append_failures: AtomicU64::new(0),
            fsync_failures: AtomicU64::new(0),
            corrupt_lines: 0,
            loaded: 0,
        })
    }

    /// [`resume`](Self::resume) at an explicit path (tests).
    pub fn resume_at(path: impl Into<PathBuf>) -> std::io::Result<Self> {
        Self::resume_at_with(path, Arc::new(RealVfs))
    }

    /// [`resume_at`](Self::resume_at) with an explicit storage layer.
    pub fn resume_at_with(path: impl Into<PathBuf>, vfs: Arc<dyn Vfs>) -> std::io::Result<Self> {
        let path = path.into();
        if !vfs.exists(&path) {
            eprintln!(
                "warning: no checkpoint journal at {}; starting from scratch",
                path.display()
            );
            return Self::create_at_with(path, vfs);
        }
        let bytes = vfs.read(&path)?;
        let (seen, corrupt_lines) = Self::replay_lines(&path, &bytes);
        let loaded = seen.len();
        if bytes.last().is_some_and(|b| *b != b'\n') {
            // A torn final line: terminate it so our appends start on a
            // fresh line (the fragment stays behind, skipped on replay).
            vfs.append(&path, b"\n")?;
        }
        Ok(Journal {
            path,
            vfs,
            state: Mutex::new(JournalState { unsynced: 0, seen }),
            replays: AtomicU64::new(0),
            appends: AtomicU64::new(0),
            append_failures: AtomicU64::new(0),
            fsync_failures: AtomicU64::new(0),
            corrupt_lines,
            loaded,
        })
    }

    /// Tolerant line-by-line replay: skips (with a warning, and a count)
    /// unparsable lines — expected for at most the final, torn one —
    /// records from a different schema version, and records whose
    /// checksum no longer matches their payload. Returns the surviving
    /// records and how many lines were skipped.
    fn replay_lines(path: &Path, bytes: &[u8]) -> (HashMap<u128, Arc<RunSummary>>, u64) {
        let text = String::from_utf8_lossy(bytes);
        let mut seen = HashMap::new();
        let mut corrupt = 0u64;
        let lines: Vec<&str> = text.split('\n').filter(|l| !l.trim().is_empty()).collect();
        let last = lines.len().saturating_sub(1);
        for (i, line) in lines.iter().enumerate() {
            match serde_json::from_str::<JournalRecord>(line) {
                Ok(record) if record.schema == SCHEMA_VERSION => {
                    let key = match u128::from_str_radix(&record.key, 16) {
                        Ok(key) => key,
                        Err(_) => {
                            corrupt += 1;
                            eprintln!(
                                "warning: checkpoint journal {}: line {} has a malformed key; skipping",
                                path.display(),
                                i + 1
                            );
                            continue;
                        }
                    };
                    // Same integrity argument as the cache: the shim
                    // serializer is canonical, so re-serializing the
                    // parsed summary reproduces the exact bytes the
                    // store-time checksum covered.
                    let verified = serde_json::to_string(&record.summary)
                        .is_ok_and(|json| summary_checksum(&json) == record.checksum);
                    if verified {
                        seen.insert(key, Arc::new(record.summary));
                    } else {
                        corrupt += 1;
                        eprintln!(
                            "warning: checkpoint journal {}: line {} fails its checksum \
                             (payload corrupted since the write); that point will re-simulate",
                            path.display(),
                            i + 1
                        );
                    }
                }
                Ok(record) => {
                    corrupt += 1;
                    eprintln!(
                        "warning: checkpoint journal {}: line {} has schema {} (want {SCHEMA_VERSION}); skipping",
                        path.display(),
                        i + 1,
                        record.schema
                    );
                }
                Err(parse_err) if i == last => {
                    corrupt += 1;
                    eprintln!(
                        "warning: checkpoint journal {}: final line is truncated (torn write); \
                         that point will re-simulate: {parse_err}",
                        path.display()
                    );
                }
                Err(parse_err) => {
                    corrupt += 1;
                    eprintln!(
                        "warning: checkpoint journal {}: skipping unparsable line {}: {parse_err}",
                        path.display(),
                        i + 1
                    );
                }
            }
        }
        (seen, corrupt)
    }

    /// The journal's on-disk path.
    #[must_use]
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Looks up a completed point. Counts a replay on hit.
    #[must_use]
    pub fn lookup(&self, key: SimKey) -> Option<Arc<RunSummary>> {
        let hit = self
            .state
            .lock()
            .expect("journal lock")
            .seen
            .get(&key.0)
            .cloned();
        if hit.is_some() {
            self.replays.fetch_add(1, Ordering::Relaxed);
        }
        hit
    }

    /// Appends a completed point (idempotent: a key already in the
    /// journal — replayed or appended — is skipped). Append errors are
    /// counted and reported to stderr but otherwise non-fatal: a full
    /// disk must not kill the sweep, it only costs resumability of later
    /// points. A failed append may have persisted a partial line, so a
    /// best-effort newline re-terminates the file — replay skips the
    /// fragment and subsequent appends start clean.
    pub fn record(&self, key: SimKey, summary: &Arc<RunSummary>) {
        let mut state = self.state.lock().expect("journal lock");
        if state.seen.contains_key(&key.0) {
            return;
        }
        let Ok(summary_json) = serde_json::to_string(&**summary) else {
            eprintln!(
                "warning: checkpoint journal: unserializable record for {}",
                key.hex()
            );
            return;
        };
        let mut line = compose_envelope(key, &summary_checksum(&summary_json), &summary_json);
        line.push('\n');
        if let Err(write_err) = self.vfs.append(&self.path, line.as_bytes()) {
            self.append_failures.fetch_add(1, Ordering::Relaxed);
            eprintln!(
                "warning: checkpoint journal {}: append failed ({write_err}); \
                 this point will not be resumable",
                self.path.display()
            );
            let _ = self.vfs.append(&self.path, b"\n"); // heal a torn partial line
            return;
        }
        state.seen.insert(key.0, Arc::clone(summary));
        state.unsynced += 1;
        if state.unsynced >= FLUSH_BATCH {
            self.sync(&mut state);
        }
        self.appends.fetch_add(1, Ordering::Relaxed);
    }

    /// Fsyncs the journal, counting (and reporting once) failures
    /// instead of swallowing them: an fsync that errors means recent
    /// appends may not survive a crash, which the operator — and the
    /// end-of-run report — should know about.
    fn sync(&self, state: &mut JournalState) {
        if let Err(sync_err) = self.vfs.fsync(&self.path) {
            let prior = self.fsync_failures.fetch_add(1, Ordering::Relaxed);
            if prior == 0 {
                eprintln!(
                    "warning: checkpoint journal {}: fsync failed ({sync_err}); \
                     recent appends may not survive a crash",
                    self.path.display()
                );
            }
        }
        state.unsynced = 0;
    }

    /// Flushes and fsyncs any unsynced appends (end of an execute pass).
    pub fn flush(&self) {
        let mut state = self.state.lock().expect("journal lock");
        if state.unsynced > 0 {
            self.sync(&mut state);
        }
    }

    /// Points this process served from the journal.
    #[must_use]
    pub fn replays(&self) -> u64 {
        self.replays.load(Ordering::Relaxed)
    }

    /// Records this process appended.
    #[must_use]
    pub fn appends(&self) -> u64 {
        self.appends.load(Ordering::Relaxed)
    }

    /// Records loaded from the file when the journal was opened.
    #[must_use]
    pub fn loaded(&self) -> usize {
        self.loaded
    }

    /// The journal's health counters so far.
    #[must_use]
    pub fn stats(&self) -> JournalStats {
        JournalStats {
            loaded: self.loaded,
            replays: self.replays.load(Ordering::Relaxed),
            appends: self.appends.load(Ordering::Relaxed),
            append_failures: self.append_failures.load(Ordering::Relaxed),
            fsync_failures: self.fsync_failures.load(Ordering::Relaxed),
            corrupt_lines: self.corrupt_lines,
        }
    }
}

impl Drop for Journal {
    fn drop(&mut self) {
        self.flush();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::vfs::{FaultyVfs, StorageFaultConfig};
    use dvfs_trace::{ExecutionTrace, Freq, Time, TimeDelta};

    fn summary(marker: u64) -> Arc<RunSummary> {
        Arc::new(RunSummary {
            exec: TimeDelta::from_millis(marker as f64 + 0.1),
            gc_time: TimeDelta::ZERO,
            gc_count: marker,
            allocated: marker * 3,
            total_active: TimeDelta::ZERO,
            trace: ExecutionTrace {
                base: Freq::from_ghz(2.0),
                start: Time::ZERO,
                total: TimeDelta::ZERO,
                epochs: vec![],
                markers: vec![],
                threads: vec![],
            },
            sampled: None,
        })
    }

    fn tmp(name: &str) -> PathBuf {
        std::env::temp_dir().join(format!("depburst-journal-{}-{name}.jsonl", std::process::id()))
    }

    #[test]
    fn append_replay_roundtrip() {
        let path = tmp("roundtrip");
        let _ = std::fs::remove_file(&path);
        let journal = Journal::create_at(&path).expect("create");
        for k in 1..=5u64 {
            journal.record(SimKey(u128::from(k)), &summary(k));
        }
        // Idempotent: re-recording an existing key appends nothing.
        journal.record(SimKey(3), &summary(3));
        assert_eq!(journal.appends(), 5);
        drop(journal); // flush

        let resumed = Journal::resume_at(&path).expect("resume");
        assert_eq!(resumed.loaded(), 5);
        for k in 1..=5u64 {
            let s = resumed.lookup(SimKey(u128::from(k))).expect("replayed");
            assert_eq!(s.gc_count, k);
            assert_eq!(s.exec, TimeDelta::from_millis(k as f64 + 0.1));
        }
        assert_eq!(resumed.replays(), 5);
        assert!(resumed.lookup(SimKey(99)).is_none());
        let stats = resumed.stats();
        assert_eq!(stats.corrupt_lines, 0);
        assert_eq!(stats.append_failures, 0);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn torn_final_line_is_skipped_and_healed() {
        let path = tmp("torn");
        let _ = std::fs::remove_file(&path);
        let journal = Journal::create_at(&path).expect("create");
        journal.record(SimKey(1), &summary(1));
        journal.record(SimKey(2), &summary(2));
        journal.flush();
        drop(journal);

        // Simulate an interrupt mid-append: a truncated record with no
        // trailing newline.
        let mut bytes = std::fs::read(&path).expect("read");
        bytes.extend_from_slice(br#"{"schema":1,"key":"0000000000000000000000000000"#);
        std::fs::write(&path, &bytes).expect("tear");

        let resumed = Journal::resume_at(&path).expect("torn journals resume");
        assert_eq!(resumed.loaded(), 2, "intact records survive the tear");
        assert_eq!(resumed.stats().corrupt_lines, 1, "the fragment is counted");
        // Appending after the tear must start on a fresh line.
        resumed.record(SimKey(3), &summary(3));
        drop(resumed);

        let healed = Journal::resume_at(&path).expect("resume again");
        assert_eq!(healed.loaded(), 3, "post-tear appends are replayable");
        assert_eq!(healed.lookup(SimKey(3)).expect("new record").gc_count, 3);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn missing_journal_resumes_from_scratch() {
        let path = tmp("missing");
        let _ = std::fs::remove_file(&path);
        let journal = Journal::resume_at(&path).expect("fresh start");
        assert_eq!(journal.loaded(), 0);
        journal.record(SimKey(7), &summary(7));
        drop(journal);
        assert!(path.exists());
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn stale_schema_records_are_ignored() {
        let path = tmp("schema");
        let _ = std::fs::remove_file(&path);
        let journal = Journal::create_at(&path).expect("create");
        journal.record(SimKey(1), &summary(1));
        drop(journal);
        let mut bytes = std::fs::read(&path).expect("read");
        let current = format!("\"schema\":{SCHEMA_VERSION}");
        let text = String::from_utf8(bytes.clone()).expect("utf8");
        assert!(text.contains(&current), "journal must carry the schema tag");
        bytes = text.replace(&current, "\"schema\":999").into_bytes();
        std::fs::write(&path, &bytes).expect("rewrite");
        let resumed = Journal::resume_at(&path).expect("resume");
        assert_eq!(resumed.loaded(), 0, "stale schema must not replay");
        assert_eq!(resumed.stats().corrupt_lines, 1);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn corrupted_payloads_fail_their_checksum_and_reexecute() {
        let path = tmp("checksum");
        let _ = std::fs::remove_file(&path);
        let journal = Journal::create_at(&path).expect("create");
        journal.record(SimKey(1), &summary(1));
        journal.record(SimKey(2), &summary(2));
        drop(journal);
        // Rot one digit inside the *first* record's payload: the line
        // still parses, but the checksum no longer covers its bytes.
        let text = std::fs::read_to_string(&path).expect("read");
        let corrupted = text.replacen("\"gc_count\":1", "\"gc_count\":7", 1);
        assert_ne!(corrupted, text, "the payload digit was found and flipped");
        std::fs::write(&path, corrupted).expect("rot");

        let resumed = Journal::resume_at(&path).expect("resume");
        assert_eq!(resumed.loaded(), 1, "only the intact record replays");
        assert!(
            resumed.lookup(SimKey(1)).is_none(),
            "the rotted record must not be served"
        );
        assert_eq!(resumed.lookup(SimKey(2)).expect("intact").gc_count, 2);
        assert_eq!(resumed.stats().corrupt_lines, 1);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn fsync_failures_are_counted_not_swallowed() {
        let path = tmp("fsync");
        let _ = std::fs::remove_file(&path);
        let journal = Journal::create_at(&path).expect("create");
        journal.record(SimKey(1), &summary(1));
        // Yank the file out from under the journal: the explicit flush's
        // fsync cannot open it and must count the failure.
        std::fs::remove_file(&path).expect("yank");
        journal.flush();
        let stats = journal.stats();
        assert_eq!(stats.fsync_failures, 1);
        assert_eq!(stats.appends, 1);
        // Dropping flushes again only if unsynced > 0; it is not, so the
        // count stays stable.
        drop(journal);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn append_failures_are_counted_and_the_sweep_survives() {
        let dir = std::env::temp_dir().join(format!("depburst-journal-af-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).expect("mkdir");
        let path = dir.join("run.jsonl");
        // Every append tears: records are lost (not resumable) but
        // `record` itself never errors out of the sweep.
        let vfs = Arc::new(FaultyVfs::new(StorageFaultConfig {
            torn_write: 1.0,
            ..StorageFaultConfig::none(4)
        }));
        let journal = Journal::create_at_with(&path, vfs).expect_err("create's write also tears");
        // The constructor itself surfaces the torn create as an error —
        // build the journal against the real fs, then install the faulty
        // appends by re-resuming through the injector.
        let _ = journal;
        Journal::create_at(&path).expect("create for real");
        let vfs = Arc::new(FaultyVfs::new(StorageFaultConfig {
            torn_write: 1.0,
            ..StorageFaultConfig::none(4)
        }));
        let journal = Journal::resume_at_with(&path, vfs).expect("resume through the injector");
        journal.record(SimKey(1), &summary(1));
        journal.record(SimKey(2), &summary(2));
        let stats = journal.stats();
        assert_eq!(stats.append_failures, 2);
        assert_eq!(stats.appends, 0);
        drop(journal);
        // Both records were torn mid-line and healed with newlines; a
        // real resume skips the fragments instead of dying.
        let resumed = Journal::resume_at(&path).expect("resume");
        assert_eq!(resumed.loaded(), 0);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn run_ids_are_validated() {
        assert!(Journal::path_for("fig3-2026-08-06").is_ok());
        assert!(Journal::path_for("").is_err());
        assert!(Journal::path_for("../escape").is_err());
        assert!(Journal::path_for(".hidden").is_err());
        assert!(Journal::path_for("has space").is_err());
    }
}
