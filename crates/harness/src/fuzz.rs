//! Deterministic structure-aware fuzzing of the simulator under the
//! invariant monitor, with shrinking.
//!
//! A fuzz *case* is drawn from a small grammar of valid-by-construction
//! inputs: a benchmark and workload seed, a machine shape (cores,
//! store-queue depth, cache sampling, watchdog stride), a DVFS ladder
//! (min/step/point-count plus a base and target operating point), and an
//! optional seeded fault schedule from the measurable classes of
//! [`simx::faults`]. Every case runs under
//! [`InvariantMode::Full`](simx::InvariantMode::Full); fault-free cases
//! additionally run at the target frequency so the *metamorphic*
//! invariants — non-scaling time invariant under frequency change, total
//! execution time monotone non-increasing in frequency, predictor output
//! finite and bounded over the ladder — can compare the two runs.
//!
//! Campaigns are a pure function of `(campaign_seed, case count)`: case
//! generation uses [`SplitMix64`] streams, the simulator is seeded, and
//! the checks are deterministic, so a campaign's findings — and the
//! shrunk reproducer of each finding — are byte-for-byte reproducible.
//!
//! Shrinking is greedy over a fixed, ordered list of simplifying
//! transforms (drop the fault schedule, minimum scale, one core, seed 1,
//! default machine shape, two-point ladder, first benchmark), accepting a
//! candidate only if it still violates the *same* invariant, and
//! repeating until a full pass changes nothing. Fixed order + determinism
//! ⇒ the minimal reproducer is itself deterministic (asserted by a
//! proptest in `tests/fuzz.rs`).

use depburst::DvfsPredictor;
use depburst_core::DepburstError;
use dvfs_trace::{ExecutionTrace, Freq, FreqLadder};
use serde::Serialize;
use simx::faults::SplitMix64;
use simx::{FaultClass, FaultConfig, Invariant, InvariantMode, Machine, MachineConfig, RunOutcome};

/// The fault classes the fuzzer draws schedules from: the measurable
/// classes that corrupt observations or timing without killing the run.
/// `PanicPoint` is excluded (it exercises the *harness*, not the
/// physics) and so are the transition faults (a denied transition aborts
/// unmanaged runs by design).
pub const FUZZ_FAULTS: [FaultClass; 5] = [
    FaultClass::CounterNoise,
    FaultClass::CounterDropout,
    FaultClass::CounterSaturation,
    FaultClass::DelayedHarvest,
    FaultClass::DramJitter,
];

/// Menu of work scales, in thousandths (`10` = scale 0.01). Small enough
/// that a case simulates in tens of milliseconds.
const SCALE_MILLI: [u32; 4] = [10, 15, 20, 30];
/// Menu of core counts.
const CORES: [usize; 3] = [1, 2, 4];
/// Menu of store-queue depths (42 is the Haswell default).
const SQ_ENTRIES: [u32; 4] = [8, 16, 42, 64];
/// Menu of cache sampling ratios (64 is the default).
const SAMPLE_RATIO: [u32; 3] = [16, 64, 128];
/// Menu of watchdog poll strides (4096 is the historic default).
const WATCHDOG_STRIDE: [u32; 3] = [256, 1024, 4096];
/// Menu of ladder minimum frequencies (MHz).
const LADDER_MIN_MHZ: [u32; 3] = [800, 1000, 2000];
/// Menu of ladder steps (MHz); 125 is the paper's.
const LADDER_STEP_MHZ: [u32; 4] = [100, 125, 200, 500];

/// An optional seeded fault schedule riding on a case.
#[derive(Debug, Clone, PartialEq, Eq, Serialize)]
pub struct FuzzFault {
    /// The injected class ([`FaultClass::name`] form).
    pub class: String,
    /// Intensity in thousandths (`500` = 0.5).
    pub intensity_milli: u32,
    /// The injector seed.
    pub seed: u64,
}

/// One structure-aware fuzz input: everything a case's machine, ladder,
/// workload, and fault schedule are built from. Plain data — generation,
/// mutation (shrinking), and JSON reporting all operate on this.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct FuzzCase {
    /// The benchmark name (always a valid `dacapo_sim` benchmark).
    pub bench: String,
    /// Work scale in thousandths (`10` = scale 0.01).
    pub scale_milli: u32,
    /// Workload RNG seed.
    pub workload_seed: u64,
    /// Machine core count.
    pub cores: usize,
    /// Store-queue depth (entries).
    pub sq_entries: u32,
    /// Cache sampling ratio.
    pub sample_ratio: u32,
    /// Watchdog poll stride (events per deadline check).
    pub watchdog_stride: u32,
    /// DVFS ladder minimum (MHz).
    pub ladder_min_mhz: u32,
    /// DVFS ladder step (MHz).
    pub ladder_step_mhz: u32,
    /// DVFS ladder operating-point count (≥ 2).
    pub ladder_points: u32,
    /// Ladder index the case runs at (the machine's base frequency).
    pub base_point: u32,
    /// Ladder index of the metamorphic comparison run
    /// (`> base_point`, i.e. a strictly higher frequency).
    pub target_point: u32,
    /// The fault schedule, if any. Metamorphic checks only run on
    /// fault-free cases — injected faults corrupt observations on
    /// purpose, so cross-run comparisons would report the injection, not
    /// a bug.
    pub fault: Option<FuzzFault>,
}

impl FuzzCase {
    /// The case's work scale as a fraction.
    #[must_use]
    pub fn scale(&self) -> f64 {
        f64::from(self.scale_milli) / 1000.0
    }

    /// The case's DVFS ladder (valid by construction: the maximum is
    /// `min + (points - 1) * step`, so alignment cannot fail).
    #[must_use]
    pub fn ladder(&self) -> FreqLadder {
        let min = Freq::from_mhz(self.ladder_min_mhz);
        let max =
            Freq::from_mhz(self.ladder_min_mhz + (self.ladder_points - 1) * self.ladder_step_mhz);
        FreqLadder::new(min, max, self.ladder_step_mhz).expect("fuzz ladders align by construction")
    }

    /// The frequency at ladder index `point`.
    #[must_use]
    pub fn freq_at(&self, point: u32) -> Freq {
        Freq::from_mhz(self.ladder_min_mhz + point * self.ladder_step_mhz)
    }

    /// The machine configuration the case describes, at its base
    /// frequency.
    #[must_use]
    pub fn machine_config(&self) -> MachineConfig {
        let mut mc = MachineConfig::haswell_quad();
        mc.cores = self.cores;
        mc.store_queue_entries = self.sq_entries;
        mc.sample_ratio = self.sample_ratio;
        mc.watchdog_stride = self.watchdog_stride;
        mc.initial_freq = self.freq_at(self.base_point);
        mc
    }

    /// The fault injector configuration, when the case carries one.
    #[must_use]
    pub fn fault_config(&self) -> Option<FaultConfig> {
        self.fault.as_ref().map(|f| {
            let class = FaultClass::from_name(&f.class).expect("fuzz faults use valid names");
            FaultConfig::single(class, f64::from(f.intensity_milli) / 1000.0, f.seed)
        })
    }
}

/// SplitMix64's additive constant, reused to separate per-case streams.
const CASE_STRIDE: u64 = 0x9E37_79B9_7F4A_7C15;

fn pick<T: Copy>(rng: &mut SplitMix64, menu: &[T]) -> T {
    menu[(rng.next_u64() % menu.len() as u64) as usize]
}

/// Generates case `index` of the campaign seeded by `campaign_seed`.
/// Pure: the same `(campaign_seed, index)` always yields the same case,
/// independent of every other case.
#[must_use]
pub fn generate(campaign_seed: u64, index: u64) -> FuzzCase {
    let mut rng = SplitMix64::new(campaign_seed ^ index.wrapping_mul(CASE_STRIDE));
    let benches = dacapo_sim::all_benchmarks();
    let bench = benches[(rng.next_u64() % benches.len() as u64) as usize]
        .name
        .to_owned();
    let ladder_points = 2 + (rng.next_u64() % 7) as u32; // 2..=8
    let a = (rng.next_u64() % u64::from(ladder_points)) as u32;
    let b = (rng.next_u64() % u64::from(ladder_points - 1)) as u32;
    let b = if b >= a { b + 1 } else { b };
    let fault = if rng.chance(0.5) {
        Some(FuzzFault {
            class: pick(&mut rng, &FUZZ_FAULTS).name().to_owned(),
            intensity_milli: 50 + (rng.next_u64() % 951) as u32, // 50..=1000
            seed: rng.next_u64(),
        })
    } else {
        None
    };
    FuzzCase {
        bench,
        scale_milli: pick(&mut rng, &SCALE_MILLI),
        workload_seed: 1 + rng.next_u64() % 4,
        cores: pick(&mut rng, &CORES),
        sq_entries: pick(&mut rng, &SQ_ENTRIES),
        sample_ratio: pick(&mut rng, &SAMPLE_RATIO),
        watchdog_stride: pick(&mut rng, &WATCHDOG_STRIDE),
        ladder_min_mhz: pick(&mut rng, &LADDER_MIN_MHZ),
        ladder_step_mhz: pick(&mut rng, &LADDER_STEP_MHZ),
        ladder_points,
        base_point: a.min(b),
        target_point: a.max(b),
        fault,
    }
}

/// An invariant violation a case provoked, keyed by the invariant's
/// stable name so the shrinker can insist on preserving *this* failure.
#[derive(Debug, Clone, PartialEq, Eq, Serialize)]
pub struct CaseViolation {
    /// The violated invariant's name (`simx::Invariant::name` form, or
    /// `"machine-error"` when the simulator failed outright).
    pub invariant: String,
    /// Human-readable description.
    pub detail: String,
}

/// Tolerances of the metamorphic checks. Generous by design: they must
/// hold across every machine shape and workload the grammar can draw, at
/// epoch granularity — a tight bound here would fuzz the tolerance, not
/// the simulator.
const NONSCALING_REL_TOL: f64 = 0.30;
const NONSCALING_ABS_TOL: f64 = 5e-6;
const MONOTONE_REL_TOL: f64 = 0.05;
const PREDICTOR_SLACK: f64 = 3.0;

/// Runs one simulation of `case` at `freq` under the full invariant
/// monitor (plus the optional sabotage hook), returning the execution
/// time (seconds) and harvested trace.
fn simulate(
    case: &FuzzCase,
    freq: Freq,
    sabotage: Option<Invariant>,
) -> depburst_core::Result<(f64, ExecutionTrace)> {
    let mut mc = case.machine_config();
    mc.initial_freq = freq;
    let mut machine = Machine::new(mc);
    machine.set_invariant_mode(InvariantMode::Full);
    if let Some(inv) = sabotage {
        machine.monitor_mut().sabotage(inv);
    }
    if let Some(fault) = case.fault_config() {
        machine.install_faults(fault);
    }
    let bench = dacapo_sim::benchmark(&case.bench).expect("fuzz cases name valid benchmarks");
    let runtime = bench.install(&mut machine, case.scale(), case.workload_seed);
    let outcome = machine.run()?;
    let RunOutcome::Completed(end) = outcome else {
        unreachable!("run() only returns at completion");
    };
    let trace = machine.harvest_trace();
    if machine.monitor().on(Invariant::GcPauseAccounting) {
        for (at_secs, detail) in runtime.take_gc_violations() {
            machine
                .monitor_mut()
                .record(Invariant::GcPauseAccounting, at_secs, detail);
        }
    }
    if let Some(err) = machine.invariant_error() {
        return Err(err);
    }
    Ok((end.since(dvfs_trace::Time::ZERO).as_secs(), trace))
}

/// Sum of the frequency-invariant (non-scaling) time counters over a
/// trace: leading loads, epoch-level stall, and store-queue-full time.
fn nonscaling_secs(trace: &ExecutionTrace) -> f64 {
    trace
        .epochs
        .iter()
        .flat_map(|e| e.threads.iter())
        .map(|s| {
            s.counters.leading_loads.as_secs()
                + s.counters.stall.as_secs()
                + s.counters.sq_full.as_secs()
        })
        .sum()
}

/// Runs `case` under the full invariant monitor and returns its first
/// violation, or `None` for a clean case. Fault-free cases also run at
/// the target frequency and go through the metamorphic checks.
/// `sabotage` threads the test-only invariant-weakening hook through to
/// the machines (see [`simx::Monitor::sabotage`]).
#[must_use]
pub fn run_case(case: &FuzzCase, sabotage: Option<Invariant>) -> Option<CaseViolation> {
    // The fuzzed ladder's V/f curve must itself be sane before any
    // machine runs on it.
    let vf = energyx::VfCurve::new(case.ladder(), 0.65, 1.05);
    if let Some(detail) = vf.monotonicity_issue() {
        return Some(CaseViolation {
            invariant: Invariant::VfMonotonicity.name().to_owned(),
            detail,
        });
    }
    let base = match simulate(case, case.freq_at(case.base_point), sabotage) {
        Ok(run) => run,
        Err(err) => return Some(violation_of(err)),
    };
    if case.fault.is_some() {
        return None;
    }
    let target = match simulate(case, case.freq_at(case.target_point), sabotage) {
        Ok(run) => run,
        Err(err) => return Some(violation_of(err)),
    };
    metamorphic_violation(case, &base, &target)
}

/// Converts a simulation error into the violation it represents.
fn violation_of(err: DepburstError) -> CaseViolation {
    match err {
        DepburstError::InvariantViolation {
            invariant,
            at_secs,
            detail,
        } => CaseViolation {
            invariant,
            detail: format!("at t={at_secs} s: {detail}"),
        },
        other => CaseViolation {
            invariant: "machine-error".to_owned(),
            detail: other.to_string(),
        },
    }
}

/// The metamorphic checks over a fault-free case's base- and
/// target-frequency runs.
fn metamorphic_violation(
    case: &FuzzCase,
    base: &(f64, ExecutionTrace),
    target: &(f64, ExecutionTrace),
) -> Option<CaseViolation> {
    let (base_exec, base_trace) = base;
    let (target_exec, target_trace) = target;
    let base_mhz = case.freq_at(case.base_point).mhz();
    let target_mhz = case.freq_at(case.target_point).mhz();

    // M1: non-scaling time must not shrink with rising frequency the way
    // scaling work does. The check is directional on purpose: queue and
    // stall pressure legitimately *grows* at higher frequency (the core
    // issues faster than memory drains), but memory-bound time melting
    // away as the clock rises means it was misclassified scaling work.
    // `base` is the lower frequency by construction.
    let ns_base = nonscaling_secs(base_trace);
    let ns_target = nonscaling_secs(target_trace);
    if ns_base > ns_target * (1.0 + NONSCALING_REL_TOL) + NONSCALING_ABS_TOL {
        return Some(CaseViolation {
            invariant: Invariant::MetamorphicNonScaling.name().to_owned(),
            detail: format!(
                "non-scaling time fell from {ns_base} s at {base_mhz} MHz to {ns_target} s at \
                 {target_mhz} MHz: it tracks frequency like scaling work"
            ),
        });
    }

    // M2: execution time is monotone non-increasing in frequency.
    if *target_exec > base_exec * (1.0 + MONOTONE_REL_TOL) + 1e-9 {
        return Some(CaseViolation {
            invariant: Invariant::MetamorphicMonotone.name().to_owned(),
            detail: format!(
                "raising the frequency from {base_mhz} to {target_mhz} MHz slowed the run: \
                 {base_exec} s -> {target_exec} s"
            ),
        });
    }

    // M3: predictor output is finite, non-negative, and within ladder
    // bounds at every operating point.
    let ladder = case.ladder();
    let predictor = depburst::Dep::dep_burst();
    let at_max = predictor.predict(base_trace, ladder.max()).as_secs();
    if !at_max.is_finite() || at_max < 0.0 {
        return Some(CaseViolation {
            invariant: Invariant::PredictorBounds.name().to_owned(),
            detail: format!("prediction at the ladder maximum is {at_max} s"),
        });
    }
    for f in ladder.iter() {
        let p = predictor.predict(base_trace, f).as_secs();
        if !p.is_finite() || p < 0.0 {
            return Some(CaseViolation {
                invariant: Invariant::PredictorBounds.name().to_owned(),
                detail: format!("prediction at {} MHz is {p} s", f.mhz()),
            });
        }
        // A run can only get slower below the maximum frequency, and no
        // slower than perfect scaling times a generous slack.
        let ratio = ladder.max().ghz() / f.ghz();
        if p > at_max * ratio * PREDICTOR_SLACK + NONSCALING_ABS_TOL {
            return Some(CaseViolation {
                invariant: Invariant::PredictorBounds.name().to_owned(),
                detail: format!(
                    "prediction at {} MHz is {p} s, beyond {PREDICTOR_SLACK}x perfect-scaling \
                     bound of the {at_max} s maximum-frequency prediction",
                    f.mhz()
                ),
            });
        }
    }
    None
}

/// One named shrinking transform over a case.
type Transform = (&'static str, fn(&FuzzCase) -> FuzzCase);

/// The fixed, ordered shrinking transforms: each simplifies one
/// dimension toward its most boring value. Order matters — it is part of
/// the shrinker's determinism contract.
fn transforms() -> Vec<Transform> {
    vec![
        ("drop-fault", |c| FuzzCase {
            fault: None,
            ..c.clone()
        }),
        ("min-scale", |c| FuzzCase {
            scale_milli: SCALE_MILLI[0],
            ..c.clone()
        }),
        ("one-core", |c| FuzzCase {
            cores: 1,
            ..c.clone()
        }),
        ("seed-one", |c| FuzzCase {
            workload_seed: 1,
            ..c.clone()
        }),
        ("default-sq", |c| FuzzCase {
            sq_entries: 42,
            ..c.clone()
        }),
        ("default-sampling", |c| FuzzCase {
            sample_ratio: 64,
            ..c.clone()
        }),
        ("default-stride", |c| FuzzCase {
            watchdog_stride: 4096,
            ..c.clone()
        }),
        ("two-point-ladder", |c| FuzzCase {
            ladder_min_mhz: 1000,
            ladder_step_mhz: 125,
            ladder_points: 2,
            base_point: 0,
            target_point: 1,
            ..c.clone()
        }),
        ("first-bench", |c| FuzzCase {
            bench: dacapo_sim::all_benchmarks()[0].name.to_owned(),
            ..c.clone()
        }),
    ]
}

/// Greedily shrinks a violating case to a minimal reproducer: each
/// transform is accepted only if the candidate still violates the *same*
/// invariant, and passes repeat until one changes nothing. Deterministic:
/// same case + same violation (+ same sabotage) → same reproducer.
#[must_use]
pub fn shrink(case: &FuzzCase, violation: &CaseViolation, sabotage: Option<Invariant>) -> FuzzCase {
    let mut current = case.clone();
    // Each accepted transform is idempotent, so one pass per transform
    // bounds the loop; the cap is belt-and-braces.
    for _ in 0..4 {
        let mut changed = false;
        for (_, transform) in transforms() {
            let candidate = transform(&current);
            if candidate == current {
                continue;
            }
            if let Some(v) = run_case(&candidate, sabotage) {
                if v.invariant == violation.invariant {
                    current = candidate;
                    changed = true;
                }
            }
        }
        if !changed {
            break;
        }
    }
    current
}

/// One campaign case's outcome.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct Finding {
    /// The case's index within the campaign.
    pub index: u64,
    /// The generated input.
    pub case: FuzzCase,
    /// The violation, if the case provoked one.
    pub violation: Option<CaseViolation>,
    /// The shrunk minimal reproducer (only when a violation was found
    /// and shrinking was requested).
    pub shrunk: Option<FuzzCase>,
}

/// Runs a campaign of `cases` generated from `campaign_seed`, in order,
/// optionally shrinking each violating case. Sequential and pure: the
/// returned findings are byte-for-byte reproducible.
#[must_use]
pub fn run_campaign(
    campaign_seed: u64,
    cases: u64,
    shrink_violations: bool,
    sabotage: Option<Invariant>,
) -> Vec<Finding> {
    (0..cases)
        .map(|index| {
            let case = generate(campaign_seed, index);
            let violation = run_case(&case, sabotage);
            let shrunk = match (&violation, shrink_violations) {
                (Some(v), true) => Some(shrink(&case, v, sabotage)),
                _ => None,
            };
            Finding {
                index,
                case,
                violation,
                shrunk,
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic_and_valid() {
        for index in 0..64 {
            let case = generate(42, index);
            assert_eq!(case, generate(42, index), "same inputs, same case");
            assert!(case.base_point < case.target_point);
            assert!(case.target_point < case.ladder_points);
            let ladder = case.ladder();
            assert!(ladder.contains(case.freq_at(case.base_point)));
            assert!(ladder.contains(case.freq_at(case.target_point)));
            assert!(dacapo_sim::benchmark(&case.bench).is_some());
            assert!(case.scale() > 0.0);
            if let Some(fault) = &case.fault {
                let class = FaultClass::from_name(&fault.class).expect("valid class");
                assert!(FUZZ_FAULTS.contains(&class), "{class} is fuzz-safe");
                assert!((50..=1000).contains(&fault.intensity_milli));
            }
        }
        assert_ne!(generate(1, 0), generate(2, 0), "seeds separate campaigns");
    }

    #[test]
    fn distinct_indices_draw_distinct_cases() {
        let cases: Vec<FuzzCase> = (0..16).map(|i| generate(7, i)).collect();
        let firsts = cases.iter().filter(|c| c.bench == cases[0].bench).count();
        assert!(firsts < 16, "cases must not all collapse to one benchmark");
    }

    #[test]
    fn a_clean_case_runs_without_violations() {
        // Index chosen arbitrarily; any violation here is a real bug (the
        // CI campaign covers many more).
        let case = generate(0xF00D, 0);
        assert_eq!(run_case(&case, None), None);
    }

    #[test]
    fn sabotage_is_caught_and_shrunk() {
        let case = generate(0xF00D, 1);
        let sabotage = Some(Invariant::CounterConservation);
        let violation = run_case(&case, sabotage).expect("sabotaged monitor must fire");
        assert_eq!(violation.invariant, "counter-conservation");
        let minimal = shrink(&case, &violation, sabotage);
        assert_eq!(
            run_case(&minimal, sabotage).expect("reproducer still fires").invariant,
            violation.invariant
        );
        // The shrinker reached the boring corner of the grammar.
        assert!(minimal.fault.is_none());
        assert_eq!(minimal.scale_milli, SCALE_MILLI[0]);
        assert_eq!(minimal.cores, 1);
        assert_eq!(minimal.ladder_points, 2);
    }
}
