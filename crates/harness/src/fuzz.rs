//! Deterministic structure-aware fuzzing of the simulator under the
//! invariant monitor, with shrinking.
//!
//! A fuzz *case* is drawn from a small grammar of valid-by-construction
//! inputs: a benchmark and workload seed, a machine shape (cores,
//! store-queue depth, cache sampling, watchdog stride), a DVFS ladder
//! (min/step/point-count plus a base and target operating point), and an
//! optional seeded fault schedule from the measurable classes of
//! [`simx::faults`]. Every case runs under
//! [`InvariantMode::Full`](simx::InvariantMode::Full); fault-free cases
//! additionally run at the target frequency so the *metamorphic*
//! invariants — non-scaling time invariant under frequency change, total
//! execution time monotone non-increasing in frequency, predictor output
//! finite and bounded over the ladder — can compare the two runs.
//!
//! Campaigns are a pure function of `(campaign_seed, case count)`: case
//! generation uses [`SplitMix64`] streams, the simulator is seeded, and
//! the checks are deterministic, so a campaign's findings — and the
//! shrunk reproducer of each finding — are byte-for-byte reproducible.
//!
//! Shrinking is greedy over a fixed, ordered list of simplifying
//! transforms (drop the fault schedule, minimum scale, one core, seed 1,
//! default machine shape, two-point ladder, first benchmark), accepting a
//! candidate only if it still violates the *same* invariant, and
//! repeating until a full pass changes nothing. Fixed order + determinism
//! ⇒ the minimal reproducer is itself deterministic (asserted by a
//! proptest in `tests/fuzz.rs`).

use depburst::DvfsPredictor;
use depburst_core::DepburstError;
use dvfs_trace::{ExecutionTrace, Freq, FreqLadder};
use serde::Serialize;
use simx::faults::SplitMix64;
use simx::{FaultClass, FaultConfig, Invariant, InvariantMode, Machine, MachineConfig, RunOutcome};

/// The fault classes the fuzzer draws schedules from: the measurable
/// classes that corrupt observations or timing without killing the run.
/// `PanicPoint` is excluded (it exercises the *harness*, not the
/// physics) and so are the transition faults (a denied transition aborts
/// unmanaged runs by design).
pub const FUZZ_FAULTS: [FaultClass; 5] = [
    FaultClass::CounterNoise,
    FaultClass::CounterDropout,
    FaultClass::CounterSaturation,
    FaultClass::DelayedHarvest,
    FaultClass::DramJitter,
];

/// Menu of work scales, in thousandths (`10` = scale 0.01). Small enough
/// that a case simulates in tens of milliseconds.
const SCALE_MILLI: [u32; 4] = [10, 15, 20, 30];
/// Menu of core counts.
const CORES: [usize; 3] = [1, 2, 4];
/// Menu of store-queue depths (42 is the Haswell default).
const SQ_ENTRIES: [u32; 4] = [8, 16, 42, 64];
/// Menu of cache sampling ratios (64 is the default).
const SAMPLE_RATIO: [u32; 3] = [16, 64, 128];
/// Menu of watchdog poll strides (4096 is the historic default).
const WATCHDOG_STRIDE: [u32; 3] = [256, 1024, 4096];
/// Menu of ladder minimum frequencies (MHz).
const LADDER_MIN_MHZ: [u32; 3] = [800, 1000, 2000];
/// Menu of ladder steps (MHz); 125 is the paper's.
const LADDER_STEP_MHZ: [u32; 4] = [100, 125, 200, 500];

/// An optional seeded fault schedule riding on a case.
#[derive(Debug, Clone, PartialEq, Eq, Serialize)]
pub struct FuzzFault {
    /// The injected class ([`FaultClass::name`] form).
    pub class: String,
    /// Intensity in thousandths (`500` = 0.5).
    pub intensity_milli: u32,
    /// The injector seed.
    pub seed: u64,
}

/// One structure-aware fuzz input: everything a case's machine, ladder,
/// workload, and fault schedule are built from. Plain data — generation,
/// mutation (shrinking), and JSON reporting all operate on this.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct FuzzCase {
    /// The benchmark name (always a valid `dacapo_sim` benchmark).
    pub bench: String,
    /// Work scale in thousandths (`10` = scale 0.01).
    pub scale_milli: u32,
    /// Workload RNG seed.
    pub workload_seed: u64,
    /// Machine core count.
    pub cores: usize,
    /// Store-queue depth (entries).
    pub sq_entries: u32,
    /// Cache sampling ratio.
    pub sample_ratio: u32,
    /// Watchdog poll stride (events per deadline check).
    pub watchdog_stride: u32,
    /// DVFS ladder minimum (MHz).
    pub ladder_min_mhz: u32,
    /// DVFS ladder step (MHz).
    pub ladder_step_mhz: u32,
    /// DVFS ladder operating-point count (≥ 2).
    pub ladder_points: u32,
    /// Ladder index the case runs at (the machine's base frequency).
    pub base_point: u32,
    /// Ladder index of the metamorphic comparison run
    /// (`> base_point`, i.e. a strictly higher frequency).
    pub target_point: u32,
    /// The fault schedule, if any. Metamorphic checks only run on
    /// fault-free cases — injected faults corrupt observations on
    /// purpose, so cross-run comparisons would report the injection, not
    /// a bug.
    pub fault: Option<FuzzFault>,
}

impl FuzzCase {
    /// The case's work scale as a fraction.
    #[must_use]
    pub fn scale(&self) -> f64 {
        f64::from(self.scale_milli) / 1000.0
    }

    /// The case's DVFS ladder (valid by construction: the maximum is
    /// `min + (points - 1) * step`, so alignment cannot fail).
    #[must_use]
    pub fn ladder(&self) -> FreqLadder {
        let min = Freq::from_mhz(self.ladder_min_mhz);
        let max =
            Freq::from_mhz(self.ladder_min_mhz + (self.ladder_points - 1) * self.ladder_step_mhz);
        FreqLadder::new(min, max, self.ladder_step_mhz).expect("fuzz ladders align by construction")
    }

    /// The frequency at ladder index `point`.
    #[must_use]
    pub fn freq_at(&self, point: u32) -> Freq {
        Freq::from_mhz(self.ladder_min_mhz + point * self.ladder_step_mhz)
    }

    /// The machine configuration the case describes, at its base
    /// frequency.
    #[must_use]
    pub fn machine_config(&self) -> MachineConfig {
        let mut mc = MachineConfig::haswell_quad();
        mc.cores = self.cores;
        mc.store_queue_entries = self.sq_entries;
        mc.sample_ratio = self.sample_ratio;
        mc.watchdog_stride = self.watchdog_stride;
        mc.initial_freq = self.freq_at(self.base_point);
        mc
    }

    /// The fault injector configuration, when the case carries one.
    #[must_use]
    pub fn fault_config(&self) -> Option<FaultConfig> {
        self.fault.as_ref().map(|f| {
            let class = FaultClass::from_name(&f.class).expect("fuzz faults use valid names");
            FaultConfig::single(class, f64::from(f.intensity_milli) / 1000.0, f.seed)
        })
    }
}

/// SplitMix64's additive constant, reused to separate per-case streams.
const CASE_STRIDE: u64 = 0x9E37_79B9_7F4A_7C15;

fn pick<T: Copy>(rng: &mut SplitMix64, menu: &[T]) -> T {
    menu[(rng.next_u64() % menu.len() as u64) as usize]
}

/// Generates case `index` of the campaign seeded by `campaign_seed`.
/// Pure: the same `(campaign_seed, index)` always yields the same case,
/// independent of every other case.
#[must_use]
pub fn generate(campaign_seed: u64, index: u64) -> FuzzCase {
    let mut rng = SplitMix64::new(campaign_seed ^ index.wrapping_mul(CASE_STRIDE));
    let benches = dacapo_sim::all_benchmarks();
    let bench = benches[(rng.next_u64() % benches.len() as u64) as usize]
        .name
        .to_owned();
    let ladder_points = 2 + (rng.next_u64() % 7) as u32; // 2..=8
    let a = (rng.next_u64() % u64::from(ladder_points)) as u32;
    let b = (rng.next_u64() % u64::from(ladder_points - 1)) as u32;
    let b = if b >= a { b + 1 } else { b };
    let fault = if rng.chance(0.5) {
        Some(FuzzFault {
            class: pick(&mut rng, &FUZZ_FAULTS).name().to_owned(),
            intensity_milli: 50 + (rng.next_u64() % 951) as u32, // 50..=1000
            seed: rng.next_u64(),
        })
    } else {
        None
    };
    FuzzCase {
        bench,
        scale_milli: pick(&mut rng, &SCALE_MILLI),
        workload_seed: 1 + rng.next_u64() % 4,
        cores: pick(&mut rng, &CORES),
        sq_entries: pick(&mut rng, &SQ_ENTRIES),
        sample_ratio: pick(&mut rng, &SAMPLE_RATIO),
        watchdog_stride: pick(&mut rng, &WATCHDOG_STRIDE),
        ladder_min_mhz: pick(&mut rng, &LADDER_MIN_MHZ),
        ladder_step_mhz: pick(&mut rng, &LADDER_STEP_MHZ),
        ladder_points,
        base_point: a.min(b),
        target_point: a.max(b),
        fault,
    }
}

/// An invariant violation a case provoked, keyed by the invariant's
/// stable name so the shrinker can insist on preserving *this* failure.
#[derive(Debug, Clone, PartialEq, Eq, Serialize)]
pub struct CaseViolation {
    /// The violated invariant's name (`simx::Invariant::name` form, or
    /// `"machine-error"` when the simulator failed outright).
    pub invariant: String,
    /// Human-readable description.
    pub detail: String,
}

/// Tolerances of the metamorphic checks. Generous by design: they must
/// hold across every machine shape and workload the grammar can draw, at
/// epoch granularity — a tight bound here would fuzz the tolerance, not
/// the simulator.
const NONSCALING_REL_TOL: f64 = 0.30;
const NONSCALING_ABS_TOL: f64 = 5e-6;
const MONOTONE_REL_TOL: f64 = 0.05;
const PREDICTOR_SLACK: f64 = 3.0;

/// Runs one simulation of `case` at `freq` under the full invariant
/// monitor (plus the optional sabotage hook), returning the execution
/// time (seconds) and harvested trace.
fn simulate(
    case: &FuzzCase,
    freq: Freq,
    sabotage: Option<Invariant>,
) -> depburst_core::Result<(f64, ExecutionTrace)> {
    let mut mc = case.machine_config();
    mc.initial_freq = freq;
    let mut machine = Machine::new(mc);
    machine.set_invariant_mode(InvariantMode::Full);
    if let Some(inv) = sabotage {
        machine.monitor_mut().sabotage(inv);
    }
    if let Some(fault) = case.fault_config() {
        machine.install_faults(fault);
    }
    let bench = dacapo_sim::benchmark(&case.bench).expect("fuzz cases name valid benchmarks");
    let runtime = bench.install(&mut machine, case.scale(), case.workload_seed);
    let outcome = machine.run()?;
    let RunOutcome::Completed(end) = outcome else {
        unreachable!("run() only returns at completion");
    };
    let trace = machine.harvest_trace();
    if machine.monitor().on(Invariant::GcPauseAccounting) {
        for (at_secs, detail) in runtime.take_gc_violations() {
            machine
                .monitor_mut()
                .record(Invariant::GcPauseAccounting, at_secs, detail);
        }
    }
    if let Some(err) = machine.invariant_error() {
        return Err(err);
    }
    Ok((end.since(dvfs_trace::Time::ZERO).as_secs(), trace))
}

/// Sum of the frequency-invariant (non-scaling) time counters over a
/// trace: leading loads, epoch-level stall, and store-queue-full time.
fn nonscaling_secs(trace: &ExecutionTrace) -> f64 {
    trace
        .epochs
        .iter()
        .flat_map(|e| e.threads.iter())
        .map(|s| {
            s.counters.leading_loads.as_secs()
                + s.counters.stall.as_secs()
                + s.counters.sq_full.as_secs()
        })
        .sum()
}

/// Runs `case` under the full invariant monitor and returns its first
/// violation, or `None` for a clean case. Fault-free cases also run at
/// the target frequency and go through the metamorphic checks.
/// `sabotage` threads the test-only invariant-weakening hook through to
/// the machines (see [`simx::Monitor::sabotage`]).
#[must_use]
pub fn run_case(case: &FuzzCase, sabotage: Option<Invariant>) -> Option<CaseViolation> {
    // The fuzzed ladder's V/f curve must itself be sane before any
    // machine runs on it.
    let vf = energyx::VfCurve::new(case.ladder(), 0.65, 1.05);
    if let Some(detail) = vf.monotonicity_issue() {
        return Some(CaseViolation {
            invariant: Invariant::VfMonotonicity.name().to_owned(),
            detail,
        });
    }
    let base = match simulate(case, case.freq_at(case.base_point), sabotage) {
        Ok(run) => run,
        Err(err) => return Some(violation_of(err)),
    };
    if case.fault.is_some() {
        return None;
    }
    let target = match simulate(case, case.freq_at(case.target_point), sabotage) {
        Ok(run) => run,
        Err(err) => return Some(violation_of(err)),
    };
    metamorphic_violation(case, &base, &target)
}

/// Converts a simulation error into the violation it represents.
fn violation_of(err: DepburstError) -> CaseViolation {
    match err {
        DepburstError::InvariantViolation {
            invariant,
            at_secs,
            detail,
        } => CaseViolation {
            invariant,
            detail: format!("at t={at_secs} s: {detail}"),
        },
        other => CaseViolation {
            invariant: "machine-error".to_owned(),
            detail: other.to_string(),
        },
    }
}

/// The metamorphic checks over a fault-free case's base- and
/// target-frequency runs.
fn metamorphic_violation(
    case: &FuzzCase,
    base: &(f64, ExecutionTrace),
    target: &(f64, ExecutionTrace),
) -> Option<CaseViolation> {
    let (base_exec, base_trace) = base;
    let (target_exec, target_trace) = target;
    let base_mhz = case.freq_at(case.base_point).mhz();
    let target_mhz = case.freq_at(case.target_point).mhz();

    // M1: non-scaling time must not shrink with rising frequency the way
    // scaling work does. The check is directional on purpose: queue and
    // stall pressure legitimately *grows* at higher frequency (the core
    // issues faster than memory drains), but memory-bound time melting
    // away as the clock rises means it was misclassified scaling work.
    // `base` is the lower frequency by construction.
    let ns_base = nonscaling_secs(base_trace);
    let ns_target = nonscaling_secs(target_trace);
    if ns_base > ns_target * (1.0 + NONSCALING_REL_TOL) + NONSCALING_ABS_TOL {
        return Some(CaseViolation {
            invariant: Invariant::MetamorphicNonScaling.name().to_owned(),
            detail: format!(
                "non-scaling time fell from {ns_base} s at {base_mhz} MHz to {ns_target} s at \
                 {target_mhz} MHz: it tracks frequency like scaling work"
            ),
        });
    }

    // M2: execution time is monotone non-increasing in frequency.
    if *target_exec > base_exec * (1.0 + MONOTONE_REL_TOL) + 1e-9 {
        return Some(CaseViolation {
            invariant: Invariant::MetamorphicMonotone.name().to_owned(),
            detail: format!(
                "raising the frequency from {base_mhz} to {target_mhz} MHz slowed the run: \
                 {base_exec} s -> {target_exec} s"
            ),
        });
    }

    // M3: predictor output is finite, non-negative, and within ladder
    // bounds at every operating point.
    let ladder = case.ladder();
    let predictor = depburst::Dep::dep_burst();
    let at_max = predictor.predict(base_trace, ladder.max()).as_secs();
    if !at_max.is_finite() || at_max < 0.0 {
        return Some(CaseViolation {
            invariant: Invariant::PredictorBounds.name().to_owned(),
            detail: format!("prediction at the ladder maximum is {at_max} s"),
        });
    }
    for f in ladder.iter() {
        let p = predictor.predict(base_trace, f).as_secs();
        if !p.is_finite() || p < 0.0 {
            return Some(CaseViolation {
                invariant: Invariant::PredictorBounds.name().to_owned(),
                detail: format!("prediction at {} MHz is {p} s", f.mhz()),
            });
        }
        // A run can only get slower below the maximum frequency, and no
        // slower than perfect scaling times a generous slack.
        let ratio = ladder.max().ghz() / f.ghz();
        if p > at_max * ratio * PREDICTOR_SLACK + NONSCALING_ABS_TOL {
            return Some(CaseViolation {
                invariant: Invariant::PredictorBounds.name().to_owned(),
                detail: format!(
                    "prediction at {} MHz is {p} s, beyond {PREDICTOR_SLACK}x perfect-scaling \
                     bound of the {at_max} s maximum-frequency prediction",
                    f.mhz()
                ),
            });
        }
    }
    None
}

/// One named shrinking transform over a case.
type Transform = (&'static str, fn(&FuzzCase) -> FuzzCase);

/// The fixed, ordered shrinking transforms: each simplifies one
/// dimension toward its most boring value. Order matters — it is part of
/// the shrinker's determinism contract.
fn transforms() -> Vec<Transform> {
    vec![
        ("drop-fault", |c| FuzzCase {
            fault: None,
            ..c.clone()
        }),
        ("min-scale", |c| FuzzCase {
            scale_milli: SCALE_MILLI[0],
            ..c.clone()
        }),
        ("one-core", |c| FuzzCase {
            cores: 1,
            ..c.clone()
        }),
        ("seed-one", |c| FuzzCase {
            workload_seed: 1,
            ..c.clone()
        }),
        ("default-sq", |c| FuzzCase {
            sq_entries: 42,
            ..c.clone()
        }),
        ("default-sampling", |c| FuzzCase {
            sample_ratio: 64,
            ..c.clone()
        }),
        ("default-stride", |c| FuzzCase {
            watchdog_stride: 4096,
            ..c.clone()
        }),
        ("two-point-ladder", |c| FuzzCase {
            ladder_min_mhz: 1000,
            ladder_step_mhz: 125,
            ladder_points: 2,
            base_point: 0,
            target_point: 1,
            ..c.clone()
        }),
        ("first-bench", |c| FuzzCase {
            bench: dacapo_sim::all_benchmarks()[0].name.to_owned(),
            ..c.clone()
        }),
    ]
}

/// Greedily shrinks a violating case to a minimal reproducer: each
/// transform is accepted only if the candidate still violates the *same*
/// invariant, and passes repeat until one changes nothing. Deterministic:
/// same case + same violation (+ same sabotage) → same reproducer.
#[must_use]
pub fn shrink(case: &FuzzCase, violation: &CaseViolation, sabotage: Option<Invariant>) -> FuzzCase {
    let mut current = case.clone();
    // Each accepted transform is idempotent, so one pass per transform
    // bounds the loop; the cap is belt-and-braces.
    for _ in 0..4 {
        let mut changed = false;
        for (_, transform) in transforms() {
            let candidate = transform(&current);
            if candidate == current {
                continue;
            }
            if let Some(v) = run_case(&candidate, sabotage) {
                if v.invariant == violation.invariant {
                    current = candidate;
                    changed = true;
                }
            }
        }
        if !changed {
            break;
        }
    }
    current
}

/// One campaign case's outcome.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct Finding {
    /// The case's index within the campaign.
    pub index: u64,
    /// The generated input.
    pub case: FuzzCase,
    /// The violation, if the case provoked one.
    pub violation: Option<CaseViolation>,
    /// The shrunk minimal reproducer (only when a violation was found
    /// and shrinking was requested).
    pub shrunk: Option<FuzzCase>,
}

/// Runs a campaign of `cases` generated from `campaign_seed`, in order,
/// optionally shrinking each violating case. Sequential and pure: the
/// returned findings are byte-for-byte reproducible.
#[must_use]
pub fn run_campaign(
    campaign_seed: u64,
    cases: u64,
    shrink_violations: bool,
    sabotage: Option<Invariant>,
) -> Vec<Finding> {
    (0..cases)
        .map(|index| {
            let case = generate(campaign_seed, index);
            let violation = run_case(&case, sabotage);
            let shrunk = match (&violation, shrink_violations) {
                (Some(v), true) => Some(shrink(&case, v, sabotage)),
                _ => None,
            };
            Finding {
                index,
                case,
                violation,
                shrunk,
            }
        })
        .collect()
}

// ---------------------------------------------------------------------------
// Fleet tier: structure-aware fuzzing of the fleet round loop — chaos
// schedules, governor topology, and the thermal/power-integrity layer —
// under the fleet's own invariants (power-budget and hierarchy-budget
// conservation, ladder membership, rejoin and throttle monotonicity,
// thermal ceiling), with the same greedy deterministic shrinking.
// ---------------------------------------------------------------------------

use crate::experiments::fleet::{self, FleetConfig, SyntheticMachine};
use simx::fleet::ChaosConfig;
use simx::ThermalConfig;

/// Menu of fleet round counts. Small enough that a case runs in
/// milliseconds on synthetic machines (no characterization).
const FLEET_ROUNDS: [usize; 4] = [20, 30, 40, 60];
/// Menu of per-machine power budgets, watts.
const FLEET_BUDGET_W: [u32; 4] = [40, 60, 90, 120];
/// Menu of mean outage durations, rounds: shorter than, at, and well
/// past the thermal time constant.
const FLEET_OUTAGE_ROUNDS: [u32; 3] = [4, 8, 16];

/// The synthetic machine profile menu, index-addressable so cases stay
/// plain data. Spans CPU-bound, GC-heavy, and fixed-cost-heavy shapes.
#[must_use]
pub fn fleet_profile(index: usize) -> SyntheticMachine {
    match index % 4 {
        0 => SyntheticMachine {
            scaling_s: 2.4e-3,
            fixed_s: 0.4e-3,
            alloc_per_req: 1.5e5,
            bytes_per_gc: 6.0e7,
            gc_pause_s: 8e-3,
        },
        1 => SyntheticMachine {
            scaling_s: 1.2e-3,
            fixed_s: 1.4e-3,
            alloc_per_req: 4.0e5,
            bytes_per_gc: 2.5e7,
            gc_pause_s: 20e-3,
        },
        2 => SyntheticMachine {
            scaling_s: 3.6e-3,
            fixed_s: 0.1e-3,
            alloc_per_req: 0.0,
            bytes_per_gc: 0.0,
            gc_pause_s: 0.0,
        },
        _ => SyntheticMachine {
            scaling_s: 1.8e-3,
            fixed_s: 0.8e-3,
            alloc_per_req: 2.5e5,
            bytes_per_gc: 1.0e8,
            gc_pause_s: 5e-3,
        },
    }
}

/// One structure-aware fleet fuzz input: the fleet shape, topology, the
/// full chaos schedule (legacy classes plus brownout / aggregator-crash
/// / stuck-sensor), and the thermal switch. Plain data, like
/// [`FuzzCase`].
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct FleetFuzzCase {
    /// Machines (2..=8).
    pub machines: usize,
    /// Shards (1..=2, never more than machines).
    pub shards: usize,
    /// Region aggregators (1..=3, never more than machines).
    pub regions: usize,
    /// Fleet rounds.
    pub rounds: usize,
    /// Master seed (traffic, chaos, and sensors derive from it).
    pub seed: u64,
    /// Hierarchical governance on.
    pub hierarchy: bool,
    /// Thermal model + throttle ladder + breaker armed.
    pub thermal: bool,
    /// Legacy chaos intensity in thousandths (crash, partition,
    /// telemetry loss, stale telemetry, slow links).
    pub chaos_milli: u32,
    /// Brownout intensity, thousandths.
    pub brownout_milli: u32,
    /// Region-aggregator/root crash intensity, thousandths.
    pub aggregator_milli: u32,
    /// Stuck-sensor intensity, thousandths.
    pub sensor_milli: u32,
    /// Mean outage duration, rounds. Long incidents (past the thermal
    /// time constant) are what let budget-oblivious heat run away.
    pub outage_rounds: u32,
    /// Per-machine power budget, watts.
    pub budget_w_per_machine: u32,
    /// Indices into [`fleet_profile`], cycled across machines.
    pub profiles: Vec<usize>,
}

impl FleetFuzzCase {
    /// The fleet configuration this case describes.
    #[must_use]
    pub fn config(&self) -> FleetConfig {
        let mut config = FleetConfig::new(self.machines, self.shards, self.rounds, 0.02, self.seed);
        // DepBurst is the interesting policy: it exercises the delayed
        // telemetry ingest, demotion ladder, and rejoin paths.
        config.policy = energyx::GovernorPolicy::DepBurst;
        let mut chaos = ChaosConfig::uniform(f64::from(self.chaos_milli) / 1000.0, self.seed);
        chaos.brownout = f64::from(self.brownout_milli) / 1000.0;
        chaos.aggregator_crash = f64::from(self.aggregator_milli) / 1000.0;
        chaos.sensor_stuck = f64::from(self.sensor_milli) / 1000.0;
        chaos.mean_outage_rounds = self.outage_rounds.max(1);
        config.chaos = chaos;
        config.regions = self.regions;
        config.hierarchy = self.hierarchy;
        if self.thermal {
            config.thermal = ThermalConfig::datacenter(self.seed);
        }
        config.budget_w = f64::from(self.budget_w_per_machine) * self.machines as f64;
        config
    }

    /// The synthetic machine profiles, resolved from the menu.
    #[must_use]
    pub fn params(&self) -> Vec<SyntheticMachine> {
        self.profiles.iter().map(|&ix| fleet_profile(ix)).collect()
    }
}

/// Stream salt separating the fleet campaign from the point campaign at
/// the same seed.
const FLEET_CASE_SALT: u64 = 0x666C656574;

/// Generates fleet case `index` of the campaign seeded by
/// `campaign_seed`. Pure, like [`generate`].
#[must_use]
pub fn generate_fleet(campaign_seed: u64, index: u64) -> FleetFuzzCase {
    let mut rng =
        SplitMix64::new(campaign_seed ^ FLEET_CASE_SALT ^ index.wrapping_mul(CASE_STRIDE));
    let machines = 2 + (rng.next_u64() % 7) as usize; // 2..=8
    let shards = 1 + (rng.next_u64() % 2) as usize;
    let shards = shards.min(machines);
    let regions = (1 + (rng.next_u64() % 3) as usize).min(machines);
    let intensity = |rng: &mut SplitMix64| -> u32 {
        if rng.chance(0.5) {
            0
        } else {
            100 + (rng.next_u64() % 701) as u32 // 100..=800
        }
    };
    let chaos_milli = intensity(&mut rng);
    let brownout_milli = intensity(&mut rng);
    let aggregator_milli = intensity(&mut rng);
    let sensor_milli = intensity(&mut rng);
    let profile_count = 1 + (rng.next_u64() % 3) as usize;
    let profiles = (0..profile_count)
        .map(|_| (rng.next_u64() % 4) as usize)
        .collect();
    FleetFuzzCase {
        machines,
        shards,
        regions,
        rounds: pick(&mut rng, &FLEET_ROUNDS),
        seed: 1 + rng.next_u64() % 1000,
        hierarchy: rng.chance(0.5),
        thermal: rng.chance(0.6),
        chaos_milli,
        brownout_milli,
        aggregator_milli,
        sensor_milli,
        outage_rounds: pick(&mut rng, &FLEET_OUTAGE_ROUNDS),
        budget_w_per_machine: pick(&mut rng, &FLEET_BUDGET_W),
        profiles,
    }
}

/// Runs one fleet case under the full fleet invariant set (plus the
/// optional sabotage hook) and returns its violation, if any. Chaos is
/// *weather*, not failure: a clean run under any schedule returns
/// `None`; only an invariant violation (or an outright error) reports.
#[must_use]
pub fn run_fleet_case(case: &FleetFuzzCase, sabotage: Option<Invariant>) -> Option<CaseViolation> {
    let mut config = case.config();
    config.sabotage = sabotage;
    match fleet::run_synthetic(&config, &case.params()) {
        Ok(_) => None,
        Err(err) => Some(violation_of(err)),
    }
}

/// One named shrinking transform over a fleet case.
type FleetTransform = (&'static str, fn(&FleetFuzzCase) -> FleetFuzzCase);

/// The fixed, ordered fleet shrinking transforms. Transforms that would
/// remove a violation's trigger (calm weather for a chaos-dependent
/// finding, thermal-off for a ceiling breach) are naturally rejected by
/// the same-invariant rule, so the reproducer keeps exactly the
/// machinery the bug needs.
fn fleet_transforms() -> Vec<FleetTransform> {
    vec![
        ("calm-weather", |c| FleetFuzzCase {
            chaos_milli: 0,
            brownout_milli: 0,
            aggregator_milli: 0,
            sensor_milli: 0,
            ..c.clone()
        }),
        ("thermal-off", |c| FleetFuzzCase {
            thermal: false,
            ..c.clone()
        }),
        ("short-outages", |c| FleetFuzzCase {
            outage_rounds: FLEET_OUTAGE_ROUNDS[0],
            ..c.clone()
        }),
        ("flat-topology", |c| FleetFuzzCase {
            hierarchy: false,
            ..c.clone()
        }),
        ("one-region", |c| FleetFuzzCase {
            regions: 1,
            ..c.clone()
        }),
        ("short-run", |c| FleetFuzzCase {
            rounds: FLEET_ROUNDS[0],
            ..c.clone()
        }),
        ("small-fleet", |c| {
            let machines = 2.max(c.regions);
            FleetFuzzCase {
                machines,
                shards: 1,
                ..c.clone()
            }
        }),
        ("seed-one", |c| FleetFuzzCase {
            seed: 1,
            ..c.clone()
        }),
        ("one-profile", |c| FleetFuzzCase {
            profiles: vec![c.profiles[0]],
            ..c.clone()
        }),
    ]
}

/// Greedily shrinks a violating fleet case to a minimal reproducer,
/// with the same accept-only-same-invariant contract as [`shrink`].
#[must_use]
pub fn shrink_fleet(
    case: &FleetFuzzCase,
    violation: &CaseViolation,
    sabotage: Option<Invariant>,
) -> FleetFuzzCase {
    let mut current = case.clone();
    for _ in 0..4 {
        let mut changed = false;
        for (_, transform) in fleet_transforms() {
            let candidate = transform(&current);
            if candidate == current {
                continue;
            }
            if let Some(v) = run_fleet_case(&candidate, sabotage) {
                if v.invariant == violation.invariant {
                    current = candidate;
                    changed = true;
                }
            }
        }
        if !changed {
            break;
        }
    }
    current
}

/// One fleet campaign case's outcome.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct FleetFinding {
    /// The case's index within the campaign.
    pub index: u64,
    /// The generated input.
    pub case: FleetFuzzCase,
    /// The violation, if the case provoked one.
    pub violation: Option<CaseViolation>,
    /// The shrunk minimal reproducer (when violating and requested).
    pub shrunk: Option<FleetFuzzCase>,
}

/// Runs a fleet campaign of `cases` from `campaign_seed`, in order,
/// optionally shrinking each violating case. Sequential and pure.
#[must_use]
pub fn run_fleet_campaign(
    campaign_seed: u64,
    cases: u64,
    shrink_violations: bool,
    sabotage: Option<Invariant>,
) -> Vec<FleetFinding> {
    (0..cases)
        .map(|index| {
            let case = generate_fleet(campaign_seed, index);
            let violation = run_fleet_case(&case, sabotage);
            let shrunk = match (&violation, shrink_violations) {
                (Some(v), true) => Some(shrink_fleet(&case, v, sabotage)),
                _ => None,
            };
            FleetFinding {
                index,
                case,
                violation,
                shrunk,
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic_and_valid() {
        for index in 0..64 {
            let case = generate(42, index);
            assert_eq!(case, generate(42, index), "same inputs, same case");
            assert!(case.base_point < case.target_point);
            assert!(case.target_point < case.ladder_points);
            let ladder = case.ladder();
            assert!(ladder.contains(case.freq_at(case.base_point)));
            assert!(ladder.contains(case.freq_at(case.target_point)));
            assert!(dacapo_sim::benchmark(&case.bench).is_some());
            assert!(case.scale() > 0.0);
            if let Some(fault) = &case.fault {
                let class = FaultClass::from_name(&fault.class).expect("valid class");
                assert!(FUZZ_FAULTS.contains(&class), "{class} is fuzz-safe");
                assert!((50..=1000).contains(&fault.intensity_milli));
            }
        }
        assert_ne!(generate(1, 0), generate(2, 0), "seeds separate campaigns");
    }

    #[test]
    fn distinct_indices_draw_distinct_cases() {
        let cases: Vec<FuzzCase> = (0..16).map(|i| generate(7, i)).collect();
        let firsts = cases.iter().filter(|c| c.bench == cases[0].bench).count();
        assert!(firsts < 16, "cases must not all collapse to one benchmark");
    }

    #[test]
    fn a_clean_case_runs_without_violations() {
        // Index chosen arbitrarily; any violation here is a real bug (the
        // CI campaign covers many more).
        let case = generate(0xF00D, 0);
        assert_eq!(run_case(&case, None), None);
    }

    #[test]
    fn sabotage_is_caught_and_shrunk() {
        let case = generate(0xF00D, 1);
        let sabotage = Some(Invariant::CounterConservation);
        let violation = run_case(&case, sabotage).expect("sabotaged monitor must fire");
        assert_eq!(violation.invariant, "counter-conservation");
        let minimal = shrink(&case, &violation, sabotage);
        assert_eq!(
            run_case(&minimal, sabotage).expect("reproducer still fires").invariant,
            violation.invariant
        );
        // The shrinker reached the boring corner of the grammar.
        assert!(minimal.fault.is_none());
        assert_eq!(minimal.scale_milli, SCALE_MILLI[0]);
        assert_eq!(minimal.cores, 1);
        assert_eq!(minimal.ladder_points, 2);
    }

    // --- fleet tier ---

    /// A fleet case that exercises every extension at once: hierarchy,
    /// thermal, and a heavy mixed-class storm. Anchors the sabotage
    /// tests so they do not depend on what `generate_fleet` happens to
    /// draw.
    fn stormy_fleet_case() -> FleetFuzzCase {
        FleetFuzzCase {
            machines: 6,
            shards: 2,
            regions: 3,
            rounds: 60,
            seed: 1,
            hierarchy: true,
            thermal: true,
            chaos_milli: 400,
            brownout_milli: 600,
            aggregator_milli: 600,
            sensor_milli: 300,
            outage_rounds: 16,
            budget_w_per_machine: 60,
            profiles: vec![0, 1],
        }
    }

    #[test]
    fn fleet_generation_is_deterministic_and_valid() {
        for index in 0..64 {
            let case = generate_fleet(42, index);
            assert_eq!(case, generate_fleet(42, index), "same inputs, same case");
            assert!((2..=8).contains(&case.machines));
            assert!(case.shards >= 1 && case.shards <= case.machines);
            assert!(case.regions >= 1 && case.regions <= case.machines);
            assert!(FLEET_ROUNDS.contains(&case.rounds));
            assert!(FLEET_OUTAGE_ROUNDS.contains(&case.outage_rounds));
            assert!(FLEET_BUDGET_W.contains(&case.budget_w_per_machine));
            assert!(!case.profiles.is_empty() && case.profiles.len() <= 3);
            for milli in [
                case.chaos_milli,
                case.brownout_milli,
                case.aggregator_milli,
                case.sensor_milli,
            ] {
                assert!(milli == 0 || (100..=800).contains(&milli));
            }
        }
        assert_ne!(generate_fleet(1, 0), generate_fleet(2, 0));
        // The fleet stream must not mirror the point stream's draws.
        assert_ne!(generate_fleet(7, 0), generate_fleet(7, 1));
    }

    #[test]
    fn a_clean_fleet_case_runs_without_violations() {
        assert_eq!(run_fleet_case(&stormy_fleet_case(), None), None);
    }

    #[test]
    fn fleet_sabotage_throttle_monotonicity_is_caught_and_shrunk() {
        let case = stormy_fleet_case();
        let sabotage = Some(Invariant::ThrottleMonotonicity);
        let violation = run_fleet_case(&case, sabotage).expect("forged transition must fire");
        assert_eq!(violation.invariant, "throttle-monotonicity");
        let minimal = shrink_fleet(&case, &violation, sabotage);
        assert_eq!(
            run_fleet_case(&minimal, sabotage).expect("reproducer still fires").invariant,
            violation.invariant
        );
        // The forge only runs with thermal armed, so the shrinker must
        // keep the thermal layer while dropping everything else it can.
        assert!(minimal.thermal, "thermal-off would remove the trigger");
        assert!(!minimal.hierarchy);
        assert_eq!(minimal.rounds, FLEET_ROUNDS[0]);
        assert_eq!(minimal.profiles.len(), 1);
    }

    #[test]
    fn fleet_sabotage_hierarchy_budget_is_caught_and_shrunk() {
        let case = stormy_fleet_case();
        let sabotage = Some(Invariant::HierarchyBudgetConservation);
        let violation = run_fleet_case(&case, sabotage).expect("inflated region must fire");
        assert_eq!(violation.invariant, "hierarchy-budget-conservation");
        let minimal = shrink_fleet(&case, &violation, sabotage);
        assert_eq!(
            run_fleet_case(&minimal, sabotage).expect("reproducer still fires").invariant,
            violation.invariant
        );
        // The inflation lives in the hierarchical branch.
        assert!(minimal.hierarchy, "flat-topology would remove the trigger");
    }

    #[test]
    fn fleet_sabotage_thermal_ceiling_is_caught() {
        // The weakened ceiling only arms when a machine actually reaches
        // Emergency, which needs chaos-driven budget-oblivious heat.
        let case = stormy_fleet_case();
        let sabotage = Some(Invariant::ThermalCeiling);
        let violation = run_fleet_case(&case, sabotage).expect("weakened ceiling must fire");
        assert_eq!(violation.invariant, "thermal-ceiling");
        let minimal = shrink_fleet(&case, &violation, sabotage);
        assert_eq!(
            run_fleet_case(&minimal, sabotage).expect("reproducer still fires").invariant,
            violation.invariant
        );
        assert!(minimal.thermal, "the ceiling needs the thermal layer");
    }
}
