//! Runs the thermal & power-integrity experiment: the 2×2 matrix of
//! (flat vs hierarchical governance) × (calm vs brownout/region-crash
//! storm) with the per-machine RC thermal model armed.
//!
//! Usage: `cargo run --release -p harness --bin thermal -- [machines]
//! [rounds] [scale] [seed] [--shards N] [--regions N] [--brownout I]
//! [--region-crash I] [--sensor-stuck I] [--jobs N] ...`
//!
//! Deterministic for a fixed flag set: any `--jobs` count and any cache
//! temperature produce byte-identical `results/thermal.json`.
//! `--sampling on` is rejected like the fleet's: characterization uses
//! full two-point runs only.

use std::process::ExitCode;

use harness::cli;
use harness::experiments::thermal::{self, ThermalConfigExp};

fn main() -> ExitCode {
    let extra = [
        "--shards",
        "--regions",
        "--brownout",
        "--region-crash",
        "--sensor-stuck",
    ];
    cli::main_with_flags("thermal", &extra, |ctx, args| {
        if ctx.sampling.is_some() {
            return Err(depburst_core::DepburstError::UnsupportedOption {
                option: "--sampling".to_owned(),
                detail: "the thermal matrix characterizes machines from full two-point \
                         runs; the sampled tier applies to the point pipeline only"
                    .to_owned(),
            }
            .into());
        }
        let (shards, args) = cli::split_flag(args, "--shards")?;
        let (regions, args) = cli::split_flag(&args, "--regions")?;
        let (brownout, args) = cli::split_flag(&args, "--brownout")?;
        let (region_crash, args) = cli::split_flag(&args, "--region-crash")?;
        let (sensor_stuck, args) = cli::split_flag(&args, "--sensor-stuck")?;

        let machines: usize = args.first().and_then(|s| s.parse().ok()).unwrap_or(12);
        let rounds: usize = args.get(1).and_then(|s| s.parse().ok()).unwrap_or(160);
        let scale: f64 = args.get(2).and_then(|s| s.parse().ok()).unwrap_or(0.02);
        let seed: u64 = args.get(3).and_then(|s| s.parse().ok()).unwrap_or(1);

        let mut exp = ThermalConfigExp::new(machines, rounds, scale, seed);
        let parse_intensity = |name: &str, v: Option<String>| -> Result<f64, String> {
            match v {
                Some(v) => v
                    .parse::<f64>()
                    .ok()
                    .filter(|i| (0.0..=1.0).contains(i))
                    .ok_or_else(|| format!("invalid {name} value {v:?} (want [0, 1])")),
                None => Ok(f64::NAN),
            }
        };
        if let Some(v) = shards {
            exp.shards = v
                .parse::<usize>()
                .ok()
                .filter(|s| *s >= 1)
                .ok_or_else(|| format!("invalid --shards value {v:?}"))?;
        }
        if let Some(v) = regions {
            exp.regions = v
                .parse::<usize>()
                .ok()
                .filter(|r| *r >= 1)
                .ok_or_else(|| format!("invalid --regions value {v:?} (want >= 1)"))?;
        }
        let b = parse_intensity("--brownout", brownout)?;
        if !b.is_nan() {
            exp.brownout = b;
        }
        let a = parse_intensity("--region-crash", region_crash)?;
        if !a.is_nan() {
            exp.aggregator_crash = a;
        }
        let s = parse_intensity("--sensor-stuck", sensor_stuck)?;
        if !s.is_nan() {
            exp.sensor_stuck = s;
        }

        eprintln!(
            "thermal: {machines} machines / {} shards / {} regions, {rounds} rounds × 4 \
             scenarios (seed {seed})...",
            exp.shards, exp.regions
        );
        let report = thermal::run_with(ctx, &exp)?;
        print!("{}", thermal::render(&report));
        std::fs::create_dir_all("results")?;
        let json = serde_json::to_string_pretty(&report)?;
        std::fs::write("results/thermal.json", &json)?;
        eprintln!("wrote results/thermal.json ({} scenarios)", report.scenarios.len());
        Ok(())
    })
}
