//! Extension: per-core DVFS with application/service isolation (the
//! paper's stated future work, in the style of Sartor et al. \[35\]).
//!
//! Usage: `cargo run --release -p harness --bin percore -- [scale] [seed] [benchmarks...] [--jobs N]`

use std::process::ExitCode;

use harness::cli;
use harness::experiments::percore;

fn main() -> ExitCode {
    cli::main_with("percore", |ctx, args| {
        let scale: f64 = args.first().and_then(|s| s.parse().ok()).unwrap_or(0.4);
        let seed: u64 = args.get(1).and_then(|s| s.parse().ok()).unwrap_or(1);
        let names: Vec<&str> = if args.len() > 2 {
            args[2..].iter().map(String::as_str).collect()
        } else {
            vec!["xalan", "lusearch", "sunflow"]
        };
        let mut all = Vec::new();
        for name in names {
            let bench =
                dacapo_sim::benchmark(name).ok_or_else(|| format!("unknown benchmark {name}"))?;
            eprintln!("per-core study: {name}, scale {scale}...");
            let rows = percore::collect_with(ctx, bench, scale, seed)?;
            println!("{}", percore::render(&rows));
            all.extend(rows);
        }
        println!("{}", serde_json::to_string_pretty(&all)?);
        Ok(())
    })
}
