//! Extension: per-core DVFS with application/service isolation (the
//! paper's stated future work, in the style of Sartor et al. \[35\]).
//!
//! Usage: `cargo run --release -p harness --bin percore -- [scale] [seed] [benchmarks...]`

use harness::experiments::percore;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let scale: f64 = args.get(1).and_then(|s| s.parse().ok()).unwrap_or(0.4);
    let seed: u64 = args.get(2).and_then(|s| s.parse().ok()).unwrap_or(1);
    let names: Vec<&str> = if args.len() > 3 {
        args[3..].iter().map(String::as_str).collect()
    } else {
        vec!["xalan", "lusearch", "sunflow"]
    };
    let mut all = Vec::new();
    for name in names {
        let bench = dacapo_sim::benchmark(name).expect("known benchmark");
        eprintln!("per-core study: {name}, scale {scale}...");
        let rows = percore::collect(bench, scale, seed);
        println!("{}", percore::render(&rows));
        all.extend(rows);
    }
    println!("{}", serde_json::to_string_pretty(&all).expect("json"));
}
