//! Regenerates Figure 7: dynamic manager vs static-optimal oracle.
//!
//! Usage: `cargo run --release -p harness --bin fig7 -- [threshold-percent] [scale] [seed] [step-mhz] [--jobs N]`

use std::process::ExitCode;

use harness::cli;
use harness::experiments::fig7;

fn main() -> ExitCode {
    cli::main_with("fig7", |ctx, args| {
        let threshold: f64 = args
            .first()
            .and_then(|s| s.parse::<f64>().ok())
            .unwrap_or(10.0)
            / 100.0;
        let scale: f64 = args.get(1).and_then(|s| s.parse().ok()).unwrap_or(1.0);
        let seed: u64 = args.get(2).and_then(|s| s.parse().ok()).unwrap_or(1);
        let step: u32 = args.get(3).and_then(|s| s.parse().ok()).unwrap_or(250);
        eprintln!(
            "fig 7 at {:.0}% threshold, scale {scale}, sweep step {step} MHz...",
            threshold * 100.0
        );
        let rows = fig7::collect_with(ctx, threshold, scale, seed, step)?;
        println!("{}", fig7::render(&rows));
        println!("{}", serde_json::to_string_pretty(&rows)?);
        Ok(())
    })
}
