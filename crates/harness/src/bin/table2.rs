//! Prints Table II: the simulated system parameters. Routed through
//! [`cli::main_with`] like every other binary so the standardized exit
//! codes (0 ok, 1 usage, 2 point failures) hold across the whole suite —
//! trivially 0 here, since rendering a static table runs no points.

use std::process::ExitCode;

use harness::cli;
use harness::experiments::table2;
use simx::MachineConfig;

fn main() -> ExitCode {
    cli::main_with("table2", |_ctx, _args| {
        println!("{}", table2::render(&MachineConfig::haswell_quad()));
        Ok(())
    })
}
