//! Prints Table II: the simulated system parameters.

use harness::experiments::table2;
use simx::MachineConfig;

fn main() {
    println!("{}", table2::render(&MachineConfig::haswell_quad()));
}
