//! Regenerates Table I: per-benchmark execution and GC time at 1 GHz.
//!
//! Usage: `cargo run --release -p harness --bin table1 [scale] [--jobs N]`

use std::process::ExitCode;

use harness::cli;
use harness::experiments::table1;

fn main() -> ExitCode {
    cli::main_with("table1", |ctx, args| {
        let scale: f64 = args.first().and_then(|s| s.parse().ok()).unwrap_or(1.0);
        eprintln!("running all benchmarks at 1 GHz, scale {scale} ...");
        let rows = table1::collect_with(ctx, scale)?;
        println!("{}", table1::render(&rows));
        println!("{}", serde_json::to_string_pretty(&rows)?);
        Ok(())
    })
}
