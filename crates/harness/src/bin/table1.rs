//! Regenerates Table I: per-benchmark execution and GC time at 1 GHz.
//!
//! Usage: `cargo run --release -p harness --bin table1 [scale]`

use harness::experiments::table1;

fn main() {
    let scale: f64 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(1.0);
    eprintln!("running all benchmarks at 1 GHz, scale {scale} ...");
    let rows = table1::collect(scale);
    println!("{}", table1::render(&rows));
    println!(
        "{}",
        serde_json::to_string_pretty(&rows).expect("serializable")
    );
}
