//! Sampled-vs-exact validation sweep: measures the sampled tier's
//! extrapolation error across every workload × frequency and writes
//! `results/sampling_error.{txt,json}` (the JSON feeds the CI accuracy
//! gate).
//!
//! Usage: `cargo run --release -p harness --bin sampling_error -- [scale] [seeds] [--jobs N] [--sampling CFG]`
//!
//! `--sampling` here selects the configuration under test (default: the
//! default `SamplingConfig`); the exact arm always runs exactly.

use std::process::ExitCode;

use harness::cli;
use harness::experiments::sampling_error;

fn main() -> ExitCode {
    cli::main_with("sampling_error", |ctx, args| {
        let scale: f64 = args.first().and_then(|s| s.parse().ok()).unwrap_or(1.0);
        let nseeds: usize = args.get(1).and_then(|s| s.parse().ok()).unwrap_or(1);
        let seeds: Vec<u64> = (1..=nseeds as u64).collect();
        let cfg = ctx.sampling.unwrap_or_default();
        eprintln!(
            "sampling error: scale {scale}, {nseeds} seed(s), probe {} measure {}...",
            cfg.probe_fraction, cfg.measure_fraction
        );
        let report = sampling_error::collect_with(ctx, scale, &seeds, &cfg)?;
        let rendered = sampling_error::render(&report);
        print!("{rendered}");
        std::fs::create_dir_all("results")?;
        std::fs::write("results/sampling_error.txt", &rendered)?;
        std::fs::write(
            "results/sampling_error.json",
            serde_json::to_string_pretty(&report)?,
        )?;
        eprintln!("wrote results/sampling_error.txt and results/sampling_error.json");
        Ok(())
    })
}
