//! Regenerates Figure 1: M+CRIT vs DEP+BURST headline errors.
//!
//! Usage: `cargo run --release -p harness --bin fig1 -- [scale] [seeds] [--jobs N]`

use std::process::ExitCode;

use harness::cli;
use harness::experiments::fig1;

fn main() -> ExitCode {
    cli::main_with("fig1", |ctx, args| {
        let scale: f64 = args.first().and_then(|s| s.parse().ok()).unwrap_or(1.0);
        let nseeds: usize = args.get(1).and_then(|s| s.parse().ok()).unwrap_or(1);
        let seeds: Vec<u64> = (1..=nseeds as u64).collect();
        eprintln!("fig 1: scale {scale}, {nseeds} seed(s)...");
        let (rows, _cells) = fig1::run_with(ctx, scale, &seeds)?;
        println!("{}", fig1::render(&rows));
        println!("{}", serde_json::to_string_pretty(&rows)?);
        Ok(())
    })
}
