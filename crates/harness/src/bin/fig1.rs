//! Regenerates Figure 1: M+CRIT vs DEP+BURST headline errors.
//!
//! Usage: `cargo run --release -p harness --bin fig1 -- [scale] [seeds]`

use harness::experiments::fig1;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let scale: f64 = args.get(1).and_then(|s| s.parse().ok()).unwrap_or(1.0);
    let nseeds: usize = args.get(2).and_then(|s| s.parse().ok()).unwrap_or(1);
    let seeds: Vec<u64> = (1..=nseeds as u64).collect();
    eprintln!("fig 1: scale {scale}, {nseeds} seed(s)...");
    let (rows, _cells) = fig1::run(scale, &seeds);
    println!("{}", fig1::render(&rows));
    println!("{}", serde_json::to_string_pretty(&rows).expect("json"));
}
