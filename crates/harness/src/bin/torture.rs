//! Runs the storage-fault crash-consistency torture sweep over a small
//! fig. 3 run: crash at every selected VFS operation, resume, and demand
//! byte-identical output or a structured storage failure; flip bits in a
//! persisted envelope and demand quarantine; soak both cache and journal
//! in every probabilistic fault class at once.
//!
//! Usage: `cargo run --release -p harness --bin torture -- [scale] [seed]
//! [--dense N] [--stride N] [--max-points N] [--bitflips N] [--soak F]
//! [--storage-seed N]`
//!
//! Unlike the other binaries this one does not take the shared harness
//! flags: it builds its own execution contexts (a fresh one per crash
//! point, pinned to one worker so the fault schedule is deterministic).
//!
//! Exit codes: 0 = every durability contract held, 1 = usage or
//! infrastructure error, 2 = contract breach — a silent corruption, a
//! served bit flip, or a soak pass whose output diverged.

use std::process::ExitCode;

use harness::cli;
use harness::experiments::torture::{self, TortureConfig};

fn main() -> ExitCode {
    match run() {
        Ok(code) => code,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}

fn run() -> Result<ExitCode, Box<dyn std::error::Error>> {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut cfg = TortureConfig::default();
    let (dense, args) = cli::split_flag(&args, "--dense")?;
    if let Some(v) = dense {
        cfg.dense = v.parse().map_err(|_| format!("invalid --dense value {v:?}"))?;
    }
    let (stride, args) = cli::split_flag(&args, "--stride")?;
    if let Some(v) = stride {
        cfg.stride = v.parse().map_err(|_| format!("invalid --stride value {v:?}"))?;
    }
    let (max_points, args) = cli::split_flag(&args, "--max-points")?;
    if let Some(v) = max_points {
        cfg.max_points = v.parse().map_err(|_| format!("invalid --max-points value {v:?}"))?;
    }
    let (bitflips, args) = cli::split_flag(&args, "--bitflips")?;
    if let Some(v) = bitflips {
        cfg.bitflips = v.parse().map_err(|_| format!("invalid --bitflips value {v:?}"))?;
    }
    let (soak, args) = cli::split_flag(&args, "--soak")?;
    if let Some(v) = soak {
        cfg.soak_intensity = v
            .parse::<f64>()
            .ok()
            .filter(|i| (0.0..=1.0).contains(i))
            .ok_or_else(|| format!("invalid --soak value {v:?} (want an intensity in [0, 1])"))?;
    }
    let (storage_seed, args) = cli::split_flag(&args, "--storage-seed")?;
    if let Some(v) = storage_seed {
        cfg.storage_seed =
            v.parse().map_err(|_| format!("invalid --storage-seed value {v:?}"))?;
    }
    if let Some(flag) = args.iter().find(|a| a.starts_with("--")) {
        return Err(format!(
            "unknown flag {flag} (valid: --dense, --stride, --max-points, --bitflips, \
             --soak, --storage-seed)"
        )
        .into());
    }
    if let Some(v) = args.first() {
        cfg.scale = v
            .parse::<f64>()
            .ok()
            .filter(|s| *s > 0.0)
            .ok_or_else(|| format!("invalid scale {v:?}"))?;
    }
    if let Some(v) = args.get(1) {
        cfg.seed = v.parse().map_err(|_| format!("invalid seed {v:?}"))?;
    }

    let report = torture::run(&cfg)?;
    print!("{}", report.render());
    std::fs::create_dir_all("results")?;
    std::fs::write("results/torture.txt", report.render())?;
    std::fs::write("results/torture.json", serde_json::to_string_pretty(&report)?)?;
    eprintln!("wrote results/torture.json");
    Ok(if report.clean() {
        ExitCode::SUCCESS
    } else {
        ExitCode::from(cli::EXIT_POINT_FAILURES)
    })
}
