//! Ablation studies: DEP with each per-thread scaling model, and the
//! energy manager's hold-off/quantum sensitivity.
//!
//! Usage: `cargo run --release -p harness --bin ablation -- [scale] [seed] [--jobs N]`

use std::process::ExitCode;

use harness::cli;
use harness::experiments::ablation;

fn main() -> ExitCode {
    cli::main_with("ablation", |ctx, args| {
        let scale: f64 = args.first().and_then(|s| s.parse().ok()).unwrap_or(0.4);
        let seed: u64 = args.get(1).and_then(|s| s.parse().ok()).unwrap_or(1);
        eprintln!("ablation 1/2: DEP per-thread model, scale {scale}...");
        let rows = ablation::model_ablation_with(ctx, scale, seed)?;
        println!("{}", ablation::render_model_ablation(&rows));
        eprintln!("ablation 2/3: manager hold-off/quantum sweep...");
        let sweep = ablation::manager_sweep_with(ctx, "xalan", scale, seed)?;
        println!("{}", ablation::render_manager_sweep("xalan", &sweep));
        eprintln!("ablation 3/3: offline regression, leave-one-benchmark-out...");
        let reg = ablation::regression_ablation_with(ctx, scale, seed)?;
        println!("{}", ablation::render_regression(&reg));
        println!("{}", serde_json::to_string_pretty(&(rows, sweep, reg))?);
        Ok(())
    })
}
