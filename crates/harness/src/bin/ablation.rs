//! Ablation studies: DEP with each per-thread scaling model, and the
//! energy manager's hold-off/quantum sensitivity.
//!
//! Usage: `cargo run --release -p harness --bin ablation -- [scale] [seed]`

use harness::experiments::ablation;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let scale: f64 = args.get(1).and_then(|s| s.parse().ok()).unwrap_or(0.4);
    let seed: u64 = args.get(2).and_then(|s| s.parse().ok()).unwrap_or(1);
    eprintln!("ablation 1/2: DEP per-thread model, scale {scale}...");
    let rows = ablation::model_ablation(scale, seed);
    println!("{}", ablation::render_model_ablation(&rows));
    eprintln!("ablation 2/3: manager hold-off/quantum sweep...");
    let sweep = ablation::manager_sweep("xalan", scale, seed);
    println!("{}", ablation::render_manager_sweep("xalan", &sweep));
    eprintln!("ablation 3/3: offline regression, leave-one-benchmark-out...");
    let reg = ablation::regression_ablation(scale, seed);
    println!("{}", ablation::render_regression(&reg));
    println!(
        "{}",
        serde_json::to_string_pretty(&(rows, sweep, reg)).expect("json")
    );
}
