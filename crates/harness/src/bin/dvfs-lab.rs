//! `dvfs-lab` — an exploration CLI over the whole stack.
//!
//! ```text
//! dvfs-lab bench                         list benchmarks
//! dvfs-lab run <bench> <ghz> [scale]     run and summarise a benchmark
//! dvfs-lab record <bench> <ghz> <out.json> [scale]
//!                                        run and save the execution trace
//! dvfs-lab predict <trace.json> <ghz> [model]
//!                                        predict a saved trace at a target
//! dvfs-lab crit <trace.json>             criticality stack of a trace
//! dvfs-lab manage <bench> <slowdown%> [scale]
//!                                        run under the energy manager
//! ```
//!
//! Models for `predict`: `dep+burst` (default), `dep`, `coop+burst`,
//! `coop`, `m+crit+burst`, `m+crit`.

use std::fs;
use std::process::ExitCode;

use depburst::{Coop, CriticalityStack, Dep, DvfsPredictor, MCrit};
use dvfs_trace::{ExecutionTrace, Freq, TraceSummary};
use harness::cli::{self, CliResult};
use harness::run::try_run_benchmark;
use harness::{ExecCtx, RunConfig};

fn main() -> ExitCode {
    cli::main_with("dvfs-lab", |ctx, args| match args.first().map(String::as_str) {
        Some("bench") => cmd_bench(),
        Some("run") => cmd_run(&args[1..]),
        Some("record") => cmd_record(&args[1..]),
        Some("predict") => cmd_predict(&args[1..]),
        Some("crit") => cmd_crit(&args[1..]),
        Some("manage") => cmd_manage(ctx, &args[1..]),
        _ => {
            eprintln!("usage: dvfs-lab <bench|run|record|predict|crit|manage> ...");
            Err("unknown subcommand".into())
        }
    })
}

fn cmd_bench() -> CliResult {
    println!("{:<14} {:<6} {:>8} {:>12} {:>10}", "name", "type", "heap", "exec@1GHz", "GC@1GHz");
    for b in dacapo_sim::all_benchmarks() {
        println!(
            "{:<14} {:<6} {:>5} MB {:>9.0} ms {:>7.0} ms",
            b.name,
            format!("{:?}", b.class),
            b.heap_mb,
            b.paper.exec_ms,
            b.paper.gc_ms
        );
    }
    Ok(())
}

fn parse_run_args(args: &[String]) -> Result<(&'static dacapo_sim::Benchmark, f64, f64), Box<dyn std::error::Error>> {
    let name = args.first().ok_or("missing benchmark name")?;
    let bench = dacapo_sim::benchmark(name).ok_or_else(|| format!("unknown benchmark {name}"))?;
    let ghz: f64 = args
        .get(1)
        .ok_or("missing frequency (GHz)")?
        .parse()
        .map_err(|_| "frequency must be a number")?;
    let scale: f64 = args.get(2).and_then(|s| s.parse().ok()).unwrap_or(0.1);
    Ok((bench, ghz, scale))
}

fn cmd_run(args: &[String]) -> CliResult {
    let (bench, ghz, scale) = parse_run_args(args)?;
    let r = try_run_benchmark(bench, RunConfig::at_ghz(ghz).scaled(scale))?;
    println!("{} at {ghz} GHz (scale {scale}):", bench.name);
    println!("  execution    {}", r.exec);
    println!("  GC time      {} ({} collections)", r.gc_time, r.gc_count);
    println!("  allocated    {:.1} MB", r.allocated as f64 / (1 << 20) as f64);
    println!("  epochs       {}", r.trace.epochs.len());
    println!("  futex sleeps {}", r.stats.futex_sleeps);
    println!(
        "  instructions {:.1}M, DRAM reads {:.1}M (mean {:.0} ns)",
        r.stats.total_instructions() as f64 / 1e6,
        r.stats.dram.reads as f64 / 1e6,
        r.stats.dram.total_read_latency.as_nanos() / r.stats.dram.reads.max(1) as f64,
    );
    let s = TraceSummary::compute(&r.trace);
    println!(
        "  parallelism  {:.2} threads (app active {}, GC active {}, JIT active {})",
        s.mean_parallelism, s.application.active, s.gc.active, s.jit.active
    );
    println!(
        "  sq-full      app {}, GC {} (the BURST counter)",
        s.application.sq_full, s.gc.sq_full
    );
    println!("  events       {} dispatched", r.stats.events_dispatched);
    Ok(())
}

fn cmd_record(args: &[String]) -> CliResult {
    let (bench, ghz, _) = parse_run_args(args)?;
    let out = args.get(2).ok_or("missing output path")?;
    let scale: f64 = args.get(3).and_then(|s| s.parse().ok()).unwrap_or(0.1);
    let r = try_run_benchmark(bench, RunConfig::at_ghz(ghz).scaled(scale))?;
    fs::write(out, serde_json::to_vec(&r.trace)?)?;
    println!(
        "recorded {}: {} epochs over {} -> {out}",
        bench.name,
        r.trace.epochs.len(),
        r.exec
    );
    Ok(())
}

fn load_trace(path: &str) -> Result<ExecutionTrace, Box<dyn std::error::Error>> {
    let bytes = fs::read(path)?;
    let trace: ExecutionTrace = serde_json::from_slice(&bytes)?;
    trace.validate()?;
    Ok(trace)
}

fn model_by_name(name: &str) -> Result<Box<dyn DvfsPredictor>, Box<dyn std::error::Error>> {
    Ok(match name {
        "dep+burst" => Box::new(Dep::dep_burst()),
        "dep" => Box::new(Dep::plain()),
        "coop+burst" => Box::new(Coop::with_burst()),
        "coop" => Box::new(Coop::plain()),
        "m+crit+burst" => Box::new(MCrit::with_burst()),
        "m+crit" => Box::new(MCrit::plain()),
        other => return Err(format!("unknown model {other}").into()),
    })
}

fn cmd_predict(args: &[String]) -> CliResult {
    let path = args.first().ok_or("missing trace path")?;
    let ghz: f64 = args
        .get(1)
        .ok_or("missing target frequency (GHz)")?
        .parse()
        .map_err(|_| "frequency must be a number")?;
    let model = model_by_name(args.get(2).map(String::as_str).unwrap_or("dep+burst"))?;
    let trace = load_trace(path)?;
    let target = Freq::from_ghz(ghz);
    let predicted = model.predict(&trace, target);
    println!(
        "{}: measured {} at {}, predicted {} at {target}",
        model.name(),
        trace.total,
        trace.base,
        predicted
    );
    Ok(())
}

fn cmd_crit(args: &[String]) -> CliResult {
    let path = args.first().ok_or("missing trace path")?;
    let trace = load_trace(path)?;
    let stack = CriticalityStack::compute(&trace);
    println!("criticality stack ({} wall time):", trace.total);
    for (tid, frac) in stack.ranked() {
        let name = trace
            .thread(tid)
            .map(|t| t.name.clone())
            .unwrap_or_else(|| tid.to_string());
        println!("  {name:<10} {:5.1}%", frac * 100.0);
    }
    println!("  {:<10} {:5.1}%", "idle", stack.idle.as_secs() / trace.total.as_secs().max(1e-12) * 100.0);
    Ok(())
}

fn cmd_manage(ctx: &ExecCtx, args: &[String]) -> CliResult {
    let name = args.first().ok_or("missing benchmark name")?;
    let bench = dacapo_sim::benchmark(name).ok_or_else(|| format!("unknown benchmark {name}"))?;
    let pct: f64 = args
        .get(1)
        .ok_or("missing slowdown threshold (percent)")?
        .parse()
        .map_err(|_| "threshold must be a number")?;
    let scale: f64 = args.get(2).and_then(|s| s.parse().ok()).unwrap_or(0.1);
    let row = harness::experiments::fig6::managed_with(ctx, bench, scale, 1, pct / 100.0)?;
    println!(
        "{} under the manager at {pct}% tolerance: slowdown {:+.1}%, energy saved {:+.1}%, mean {:.2} GHz",
        bench.name,
        row.slowdown * 100.0,
        row.savings * 100.0,
        row.mean_ghz
    );
    Ok(())
}
