//! Regenerates Figure 6: energy-manager slowdown and savings.
//!
//! Usage: `cargo run --release -p harness --bin fig6 -- [threshold-percent] [scale] [seed] [--jobs N]`
//! With no threshold, runs both 5 and 10.

use std::process::ExitCode;

use harness::cli;
use harness::experiments::fig6;

fn main() -> ExitCode {
    cli::main_with("fig6", |ctx, args| {
        let thresholds: Vec<f64> = match args.first().and_then(|s| s.parse::<f64>().ok()) {
            Some(t) => vec![t / 100.0],
            None => vec![0.05, 0.10],
        };
        let scale: f64 = args.get(1).and_then(|s| s.parse().ok()).unwrap_or(1.0);
        let seed: u64 = args.get(2).and_then(|s| s.parse().ok()).unwrap_or(1);
        let mut all = Vec::new();
        for t in thresholds {
            eprintln!("fig 6 at {:.0}% threshold, scale {scale}...", t * 100.0);
            let rows = fig6::collect_with(ctx, t, scale, seed)?;
            println!("{}", fig6::render(&rows));
            all.extend(rows);
        }
        println!("{}", serde_json::to_string_pretty(&all)?);
        Ok(())
    })
}
