//! Regenerates Figure 3: per-benchmark prediction errors, both directions.
//!
//! Usage: `cargo run --release -p harness --bin fig3 -- [low-to-high|high-to-low|both] [scale] [seeds] [--jobs N]`

use std::process::ExitCode;

use harness::cli;
use harness::experiments::fig3::{collect_with, render, Direction};

fn main() -> ExitCode {
    cli::main_with("fig3", |ctx, args| {
        let which = args.first().map(String::as_str).unwrap_or("both");
        let scale: f64 = args.get(1).and_then(|s| s.parse().ok()).unwrap_or(1.0);
        let nseeds: usize = args.get(2).and_then(|s| s.parse().ok()).unwrap_or(1);
        let seeds: Vec<u64> = (1..=nseeds as u64).collect();
        let mut all = Vec::new();
        if which != "high-to-low" {
            eprintln!("fig 3(a): base 1 GHz, scale {scale}, {nseeds} seed(s)...");
            let cells = collect_with(ctx, Direction::LowToHigh, scale, &seeds)?;
            for t in [2.0, 3.0, 4.0] {
                println!("{}", render(&cells, t));
            }
            all.extend(cells);
        }
        if which != "low-to-high" {
            eprintln!("fig 3(b): base 4 GHz, scale {scale}, {nseeds} seed(s)...");
            let cells = collect_with(ctx, Direction::HighToLow, scale, &seeds)?;
            for t in [3.0, 2.0, 1.0] {
                println!("{}", render(&cells, t));
            }
            all.extend(cells);
        }
        println!("{}", serde_json::to_string_pretty(&all)?);
        Ok(())
    })
}
