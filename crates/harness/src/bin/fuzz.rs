//! `fuzz` — seeded structure-aware fuzzing of the simulator under the
//! full invariant monitor, with shrinking.
//!
//! Usage: `fuzz [--seeds N] [--seed S] [--shrink] [--fleet] [--jobs N]`
//!
//! Generates `--seeds N` cases (default 25) from campaign seed `--seed S`
//! (default 1), runs each under `DEPBURST_INVARIANTS=full`, and — with
//! `--shrink` — reduces every violating case to a minimal reproducer.
//! Campaigns are byte-for-byte reproducible: same seed, same cases, same
//! findings, same reproducers.
//!
//! `--fleet` switches to the fleet tier: cases are whole fleet rounds on
//! synthetic machines — governance topology, chaos schedules (including
//! brownout / aggregator-crash / stuck-sensor), and the thermal layer —
//! checked against the fleet invariants (thermal ceiling, throttle
//! monotonicity, hierarchy budget conservation, rejoin monotonicity, …)
//! and shrunk with topology-aware transforms.
//!
//! Violations are recorded as point failures (`results/fuzz_failures.json`,
//! exit code 2), with the shrunk reproducer's JSON in the detail.
//!
//! The test-only sabotage hook: setting `DEPBURST_BREAK_INVARIANT` to an
//! invariant name (e.g. `counter-conservation`) deliberately weakens that
//! check so it fires on healthy data — CI uses it to prove the campaign
//! machinery catches and shrinks real violations.

use std::process::ExitCode;

use harness::cli::{self, CliResult};
use harness::fuzz;
use harness::resilience::{FailureCause, PointFailure};
use harness::ExecCtx;

fn main() -> ExitCode {
    cli::main_with_flags("fuzz", &["--seeds", "--seed", "--shrink", "--fleet"], body)
}

fn body(ctx: &ExecCtx, args: &[String]) -> CliResult {
    let (seeds, args) = cli::split_flag(args, "--seeds")?;
    let (seed, args) = cli::split_flag(&args, "--seed")?;
    let shrink = args.iter().any(|a| a == "--shrink");
    let fleet_tier = args.iter().any(|a| a == "--fleet");
    let rest: Vec<&String> = args
        .iter()
        .filter(|a| *a != "--shrink" && *a != "--fleet")
        .collect();
    if !rest.is_empty() {
        return Err(format!("unexpected arguments: {rest:?}").into());
    }
    let cases: u64 = match seeds.as_deref() {
        None => 25,
        Some(v) => v
            .parse()
            .map_err(|_| format!("invalid --seeds value {v:?} (want a case count)"))?,
    };
    let campaign_seed: u64 = match seed.as_deref() {
        None => 1,
        Some(v) => v
            .parse()
            .map_err(|_| format!("invalid --seed value {v:?} (want an integer seed)"))?,
    };
    let sabotage = cli::sabotage_from_env()?;

    println!(
        "fuzz campaign: seed {campaign_seed}, {cases} case(s), shrink={shrink}, tier={}",
        if fleet_tier { "fleet" } else { "point" }
    );
    if let Some(inv) = sabotage {
        println!("sabotage hook armed: {} deliberately weakened", inv.name());
    }
    if fleet_tier {
        return fleet_body(ctx, campaign_seed, cases, shrink, sabotage);
    }
    let findings = fuzz::run_campaign(campaign_seed, cases, shrink, sabotage);
    let mut violations = 0usize;
    for finding in &findings {
        match &finding.violation {
            None => println!(
                "case {:>3}: ok       {} @ scale {}",
                finding.index,
                finding.case.bench,
                finding.case.scale()
            ),
            Some(v) => {
                violations += 1;
                println!(
                    "case {:>3}: VIOLATION [{}] {}",
                    finding.index, v.invariant, v.detail
                );
                let mut detail = format!("[{}] {}", v.invariant, v.detail);
                if let Some(minimal) = &finding.shrunk {
                    let json = serde_json::to_string(minimal)?;
                    println!("          shrunk reproducer: {json}");
                    detail.push_str(&format!("; shrunk reproducer: {json}"));
                }
                ctx.record_failure(PointFailure {
                    label: format!("fuzz case {} (campaign seed {campaign_seed})", finding.index),
                    cause: FailureCause::Invariant,
                    attempts: 1,
                    detail,
                });
            }
        }
    }
    println!(
        "fuzz campaign done: {} case(s), {violations} violation(s)",
        findings.len()
    );
    Ok(())
}

fn fleet_body(
    ctx: &ExecCtx,
    campaign_seed: u64,
    cases: u64,
    shrink: bool,
    sabotage: Option<simx::Invariant>,
) -> CliResult {
    let findings = fuzz::run_fleet_campaign(campaign_seed, cases, shrink, sabotage);
    let mut violations = 0usize;
    for finding in &findings {
        let c = &finding.case;
        match &finding.violation {
            None => println!(
                "case {:>3}: ok       {}m/{}r {} {} chaos {}/{}/{}/{}",
                finding.index,
                c.machines,
                c.regions,
                if c.hierarchy { "hier" } else { "flat" },
                if c.thermal { "thermal" } else { "cold" },
                c.chaos_milli,
                c.brownout_milli,
                c.aggregator_milli,
                c.sensor_milli,
            ),
            Some(v) => {
                violations += 1;
                println!(
                    "case {:>3}: VIOLATION [{}] {}",
                    finding.index, v.invariant, v.detail
                );
                let mut detail = format!("[{}] {}", v.invariant, v.detail);
                if let Some(minimal) = &finding.shrunk {
                    let json = serde_json::to_string(minimal)?;
                    println!("          shrunk reproducer: {json}");
                    detail.push_str(&format!("; shrunk reproducer: {json}"));
                }
                ctx.record_failure(PointFailure {
                    label: format!(
                        "fleet fuzz case {} (campaign seed {campaign_seed})",
                        finding.index
                    ),
                    cause: FailureCause::Invariant,
                    attempts: 1,
                    detail,
                });
            }
        }
    }
    println!(
        "fuzz campaign done: {} case(s), {violations} violation(s)",
        findings.len()
    );
    Ok(())
}
