//! Runs the fault-injection sweep: predictor accuracy and hardened-manager
//! degradation under each fault class × intensity.
//!
//! Usage: `cargo run --release -p harness --bin faults -- [scale] [seed] [threshold-percent] [--jobs N]`

use std::process::ExitCode;

use harness::cli;
use harness::experiments::faults;

fn main() -> ExitCode {
    cli::main_with(|ctx, args| {
        let scale: f64 = args.first().and_then(|s| s.parse().ok()).unwrap_or(0.05);
        let seed: u64 = args.get(1).and_then(|s| s.parse().ok()).unwrap_or(1);
        let threshold: f64 = args
            .get(2)
            .and_then(|s| s.parse::<f64>().ok())
            .unwrap_or(10.0)
            / 100.0;
        let intensities = [0.1, 0.25, 0.5, 1.0];
        eprintln!(
            "fault sweep at scale {scale}, seed {seed}, threshold {:.0}%...",
            threshold * 100.0
        );
        let rows = faults::collect_with(ctx, scale, seed, threshold, &intensities)?;
        println!("{}", faults::render(&rows));
        let json = serde_json::to_string_pretty(&rows)?;
        std::fs::create_dir_all("results")?;
        std::fs::write("results/faults.json", &json)?;
        eprintln!("wrote results/faults.json ({} rows)", rows.len());
        Ok(())
    })
}
