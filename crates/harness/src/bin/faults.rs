//! Runs the fault-injection sweep: predictor accuracy and hardened-manager
//! degradation under each fault class × intensity.
//!
//! Usage: `cargo run --release -p harness --bin faults -- [scale] [seed]
//! [threshold-percent] [--panic-point P] [--jobs N]`
//!
//! `--panic-point P` appends a seeded [`simx::FaultClass::PanicPoint`]
//! cell per benchmark that panics inside point evaluation with
//! probability `P`, exercising the harness's panic isolation end to end:
//! the other cells complete, the dead cells land in
//! `results/faults_failures.json`, and the process exits 2.

use std::process::ExitCode;

use harness::cli;
use harness::experiments::faults;

fn main() -> ExitCode {
    cli::main_with_flags("faults", &["--panic-point"], |ctx, args| {
        let (panic_flag, args) = cli::split_flag(args, "--panic-point")?;
        let panic_point: Option<f64> = match panic_flag {
            Some(v) => Some(
                v.parse::<f64>()
                    .ok()
                    .filter(|p| (0.0..=1.0).contains(p))
                    .ok_or_else(|| {
                        format!("invalid --panic-point value {v:?} (want a probability in [0, 1])")
                    })?,
            ),
            None => None,
        };
        let scale: f64 = args.first().and_then(|s| s.parse().ok()).unwrap_or(0.05);
        let seed: u64 = args.get(1).and_then(|s| s.parse().ok()).unwrap_or(1);
        let threshold: f64 = args
            .get(2)
            .and_then(|s| s.parse::<f64>().ok())
            .unwrap_or(10.0)
            / 100.0;
        let intensities = [0.1, 0.25, 0.5, 1.0];
        eprintln!(
            "fault sweep at scale {scale}, seed {seed}, threshold {:.0}%...",
            threshold * 100.0
        );
        let rows = faults::collect_with(ctx, scale, seed, threshold, &intensities, panic_point)?;
        println!("{}", faults::render(&rows));
        let json = serde_json::to_string_pretty(&rows)?;
        std::fs::create_dir_all("results")?;
        std::fs::write("results/faults.json", &json)?;
        eprintln!("wrote results/faults.json ({} rows)", rows.len());
        Ok(())
    })
}
