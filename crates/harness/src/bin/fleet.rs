//! Runs the fleet-scale DVFS governor simulation under a seeded chaos
//! schedule.
//!
//! Usage: `cargo run --release -p harness --bin fleet -- [machines]
//! [rounds] [scale] [seed] [--shards N] [--chaos I] [--chaos-seed S]
//! [--policy oracle|depburst|naive] [--budget W] [--slo F] [--bench NAME]
//! [--regions N] [--hierarchy on|off] [--thermal on|off] [--brownout I]
//! [--region-crash I] [--sensor-stuck I] [--jobs N] ...`
//!
//! `--chaos I` sets every *legacy* chaos class (machine crash/restart,
//! telemetry dropout, stale harvest, governor partition, slow links) to
//! intensity `I` in `[0, 1]`; `--chaos-seed` decouples the chaos schedule
//! from the workload seed. The thermal/power-integrity classes are opted
//! into individually: `--brownout`, `--region-crash` (region aggregator +
//! root outages), and `--sensor-stuck` take their own intensities so
//! legacy invocations stay byte-identical. `--thermal on` arms the
//! per-machine RC thermal model, throttle ladder, and overshoot breaker;
//! `--regions`/`--hierarchy` shape the governor topology. The run is
//! deterministic for a fixed flag set: any `--jobs` count, any cache
//! temperature, and any `--resume` of an interrupted characterization
//! produce byte-identical output. Crashed rounds are partial **by
//! design** — machines shed traffic and report it — so chaos alone never
//! makes the process exit nonzero. `--sampling on` is rejected: the
//! fleet characterizes from full runs only.

use std::process::ExitCode;

use harness::cli;
use harness::experiments::fleet::{self, FleetConfig};
use simx::fleet::ChaosConfig;
use simx::ThermalConfig;

fn main() -> ExitCode {
    let extra = [
        "--shards",
        "--chaos",
        "--chaos-seed",
        "--policy",
        "--budget",
        "--slo",
        "--bench",
        "--regions",
        "--hierarchy",
        "--thermal",
        "--brownout",
        "--region-crash",
        "--sensor-stuck",
    ];
    cli::main_with_flags("fleet", &extra, |ctx, args| {
        // The fleet's round loop is its own reduced-order model over
        // two-point characterizations; the sampled-execution tier does
        // not apply and silently accepting it would misreport coverage.
        if ctx.sampling.is_some() {
            return Err(depburst_core::DepburstError::UnsupportedOption {
                option: "--sampling".to_owned(),
                detail: "the fleet characterizes machines from full two-point runs; \
                         the sampled tier applies to the point pipeline only"
                    .to_owned(),
            }
            .into());
        }
        let (shards, args) = cli::split_flag(args, "--shards")?;
        let (chaos, args) = cli::split_flag(&args, "--chaos")?;
        let (chaos_seed, args) = cli::split_flag(&args, "--chaos-seed")?;
        let (policy, args) = cli::split_flag(&args, "--policy")?;
        let (budget, args) = cli::split_flag(&args, "--budget")?;
        let (slo, args) = cli::split_flag(&args, "--slo")?;
        let (bench, args) = cli::split_flag(&args, "--bench")?;
        let (regions, args) = cli::split_flag(&args, "--regions")?;
        let (hierarchy, args) = cli::split_flag(&args, "--hierarchy")?;
        let (thermal, args) = cli::split_flag(&args, "--thermal")?;
        let (brownout, args) = cli::split_flag(&args, "--brownout")?;
        let (region_crash, args) = cli::split_flag(&args, "--region-crash")?;
        let (sensor_stuck, args) = cli::split_flag(&args, "--sensor-stuck")?;

        let machines: usize = args.first().and_then(|s| s.parse().ok()).unwrap_or(8);
        let rounds: usize = args.get(1).and_then(|s| s.parse().ok()).unwrap_or(120);
        let scale: f64 = args.get(2).and_then(|s| s.parse().ok()).unwrap_or(0.05);
        let seed: u64 = args.get(3).and_then(|s| s.parse().ok()).unwrap_or(1);

        let shards: usize = match shards {
            Some(v) => v
                .parse()
                .map_err(|_| format!("invalid --shards value {v:?}"))?,
            None => machines.clamp(1, 4),
        };
        let intensity: f64 = match chaos {
            Some(v) => v
                .parse::<f64>()
                .ok()
                .filter(|i| (0.0..=1.0).contains(i))
                .ok_or_else(|| format!("invalid --chaos value {v:?} (want [0, 1])"))?,
            None => 0.0,
        };
        let chaos_seed: u64 = match chaos_seed {
            Some(v) => v
                .parse()
                .map_err(|_| format!("invalid --chaos-seed value {v:?}"))?,
            None => seed,
        };

        let parse_intensity = |name: &str, v: Option<String>| -> Result<f64, String> {
            match v {
                Some(v) => v
                    .parse::<f64>()
                    .ok()
                    .filter(|i| (0.0..=1.0).contains(i))
                    .ok_or_else(|| format!("invalid {name} value {v:?} (want [0, 1])")),
                None => Ok(0.0),
            }
        };
        let parse_switch = |name: &str, v: Option<String>| -> Result<bool, String> {
            match v.as_deref() {
                None | Some("off") => Ok(false),
                Some("on") => Ok(true),
                Some(other) => Err(format!("invalid {name} value {other:?} (want on or off)")),
            }
        };

        let mut config = FleetConfig::new(machines, shards, rounds, scale, seed);
        config.chaos = ChaosConfig::uniform(intensity, chaos_seed);
        config.chaos.brownout = parse_intensity("--brownout", brownout)?;
        config.chaos.aggregator_crash = parse_intensity("--region-crash", region_crash)?;
        config.chaos.sensor_stuck = parse_intensity("--sensor-stuck", sensor_stuck)?;
        config.hierarchy = parse_switch("--hierarchy", hierarchy)?;
        if parse_switch("--thermal", thermal)? {
            config.thermal = ThermalConfig::datacenter(chaos_seed);
        }
        if let Some(v) = regions {
            config.regions = v
                .parse::<usize>()
                .ok()
                .filter(|r| *r >= 1)
                .ok_or_else(|| format!("invalid --regions value {v:?} (want >= 1)"))?;
        }
        config.sabotage = cli::sabotage_from_env()?;
        if let Some(name) = policy {
            config.policy = energyx::GovernorPolicy::from_name(&name).ok_or_else(|| {
                format!("unknown --policy {name:?} (want oracle, depburst or naive)")
            })?;
        }
        if let Some(v) = budget {
            config.budget_w = v
                .parse::<f64>()
                .ok()
                .filter(|w| *w >= 0.0)
                .ok_or_else(|| format!("invalid --budget value {v:?}"))?;
        }
        if let Some(v) = slo {
            config.slo_factor = v
                .parse::<f64>()
                .ok()
                .filter(|f| *f >= 1.0)
                .ok_or_else(|| format!("invalid --slo value {v:?} (want >= 1)"))?;
        }
        if let Some(name) = bench {
            let b = dacapo_sim::benchmark(&name)
                .ok_or_else(|| format!("unknown --bench {name:?}"))?;
            config.benches = vec![b];
        }

        eprintln!(
            "fleet: {machines} machines / {shards} shards, {rounds} rounds, \
             chaos {intensity} (seed {chaos_seed}), policy {}...",
            config.policy
        );
        let outcome = fleet::run_with(ctx, &config)?;
        print!("{}", fleet::render(&outcome.report));
        std::fs::create_dir_all("results")?;
        let json = serde_json::to_string_pretty(&outcome.report)?;
        std::fs::write("results/fleet.json", &json)?;
        eprintln!(
            "wrote results/fleet.json ({} machines)",
            outcome.report.machines.len()
        );
        Ok(())
    })
}
