//! Runs the fleet-scale DVFS governor simulation under a seeded chaos
//! schedule.
//!
//! Usage: `cargo run --release -p harness --bin fleet -- [machines]
//! [rounds] [scale] [seed] [--shards N] [--chaos I] [--chaos-seed S]
//! [--policy oracle|depburst|naive] [--budget W] [--slo F] [--bench NAME]
//! [--jobs N] ...`
//!
//! `--chaos I` sets every chaos class (machine crash/restart, telemetry
//! dropout, stale harvest, governor partition, slow links) to intensity
//! `I` in `[0, 1]`; `--chaos-seed` decouples the chaos schedule from the
//! workload seed. The run is deterministic for a fixed flag set: any
//! `--jobs` count, any cache temperature, and any `--resume` of an
//! interrupted characterization produce byte-identical output. Crashed
//! rounds are partial **by design** — machines shed traffic and report
//! it — so chaos alone never makes the process exit nonzero.

use std::process::ExitCode;

use harness::cli;
use harness::experiments::fleet::{self, FleetConfig};
use simx::fleet::ChaosConfig;

fn main() -> ExitCode {
    let extra = [
        "--shards",
        "--chaos",
        "--chaos-seed",
        "--policy",
        "--budget",
        "--slo",
        "--bench",
    ];
    cli::main_with_flags("fleet", &extra, |ctx, args| {
        let (shards, args) = cli::split_flag(args, "--shards")?;
        let (chaos, args) = cli::split_flag(&args, "--chaos")?;
        let (chaos_seed, args) = cli::split_flag(&args, "--chaos-seed")?;
        let (policy, args) = cli::split_flag(&args, "--policy")?;
        let (budget, args) = cli::split_flag(&args, "--budget")?;
        let (slo, args) = cli::split_flag(&args, "--slo")?;
        let (bench, args) = cli::split_flag(&args, "--bench")?;

        let machines: usize = args.first().and_then(|s| s.parse().ok()).unwrap_or(8);
        let rounds: usize = args.get(1).and_then(|s| s.parse().ok()).unwrap_or(120);
        let scale: f64 = args.get(2).and_then(|s| s.parse().ok()).unwrap_or(0.05);
        let seed: u64 = args.get(3).and_then(|s| s.parse().ok()).unwrap_or(1);

        let shards: usize = match shards {
            Some(v) => v
                .parse()
                .map_err(|_| format!("invalid --shards value {v:?}"))?,
            None => machines.clamp(1, 4),
        };
        let intensity: f64 = match chaos {
            Some(v) => v
                .parse::<f64>()
                .ok()
                .filter(|i| (0.0..=1.0).contains(i))
                .ok_or_else(|| format!("invalid --chaos value {v:?} (want [0, 1])"))?,
            None => 0.0,
        };
        let chaos_seed: u64 = match chaos_seed {
            Some(v) => v
                .parse()
                .map_err(|_| format!("invalid --chaos-seed value {v:?}"))?,
            None => seed,
        };

        let mut config = FleetConfig::new(machines, shards, rounds, scale, seed);
        config.chaos = ChaosConfig::uniform(intensity, chaos_seed);
        if let Some(name) = policy {
            config.policy = energyx::GovernorPolicy::from_name(&name).ok_or_else(|| {
                format!("unknown --policy {name:?} (want oracle, depburst or naive)")
            })?;
        }
        if let Some(v) = budget {
            config.budget_w = v
                .parse::<f64>()
                .ok()
                .filter(|w| *w >= 0.0)
                .ok_or_else(|| format!("invalid --budget value {v:?}"))?;
        }
        if let Some(v) = slo {
            config.slo_factor = v
                .parse::<f64>()
                .ok()
                .filter(|f| *f >= 1.0)
                .ok_or_else(|| format!("invalid --slo value {v:?} (want >= 1)"))?;
        }
        if let Some(name) = bench {
            let b = dacapo_sim::benchmark(&name)
                .ok_or_else(|| format!("unknown --bench {name:?}"))?;
            config.benches = vec![b];
        }

        eprintln!(
            "fleet: {machines} machines / {shards} shards, {rounds} rounds, \
             chaos {intensity} (seed {chaos_seed}), policy {}...",
            config.policy
        );
        let outcome = fleet::run_with(ctx, &config)?;
        print!("{}", fleet::render(&outcome.report));
        std::fs::create_dir_all("results")?;
        let json = serde_json::to_string_pretty(&outcome.report)?;
        std::fs::write("results/fleet.json", &json)?;
        eprintln!(
            "wrote results/fleet.json ({} machines)",
            outcome.report.machines.len()
        );
        Ok(())
    })
}
