//! Regenerates Figure 4: per-epoch vs across-epoch CTP.
//!
//! Usage: `cargo run --release -p harness --bin fig4 -- [scale] [seeds] [--jobs N]`

use std::process::ExitCode;

use harness::cli;
use harness::experiments::fig3::Direction;
use harness::experiments::fig4;

fn main() -> ExitCode {
    cli::main_with("fig4", |ctx, args| {
        let scale: f64 = args.first().and_then(|s| s.parse().ok()).unwrap_or(1.0);
        let nseeds: usize = args.get(1).and_then(|s| s.parse().ok()).unwrap_or(1);
        let seeds: Vec<u64> = (1..=nseeds as u64).collect();
        let mut all = Vec::new();
        for direction in [Direction::LowToHigh, Direction::HighToLow] {
            eprintln!("fig 4 {direction:?}: scale {scale}, {nseeds} seed(s)...");
            let rows = fig4::collect_with(ctx, direction, scale, &seeds)?;
            println!("{}", fig4::render(&rows));
            all.extend(rows);
        }
        println!("{}", serde_json::to_string_pretty(&all)?);
        Ok(())
    })
}
