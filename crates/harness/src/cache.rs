//! Content-addressed memoization of simulation runs.
//!
//! A seeded simulation is a pure function of (workload spec, machine
//! config, fault config, scale, seed) — the frequency rides inside the
//! machine config. The cache keys a [`RunSummary`] by a stable 128-bit
//! digest of exactly those inputs ([`sim_key`]) so that experiments
//! sharing points (every figure re-runs the same baselines) simulate each
//! point once.
//!
//! Results are memoized in-process always; optionally they also persist
//! under `results/cache/v<N>/<hex-key>.json` as versioned JSON envelopes.
//! Persistence is **off by default** (hermetic tests) and enabled by the
//! `DEPBURST_CACHE` environment variable: `1` uses the default
//! `results/cache` directory, any other non-empty value (except `0`) is
//! used as the directory itself. A bump of [`SCHEMA_VERSION`] — required
//! whenever the simulator's observable behaviour or the summary layout
//! changes — retires every old entry by moving to a fresh subdirectory;
//! envelopes whose schema or key do not match are ignored and recomputed.

use std::collections::{HashMap, HashSet};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};

use dacapo_sim::Benchmark;
use depburst_core::stablehash::StableHasher;
use serde::{Deserialize, Serialize};
use simx::{FaultConfig, MachineConfig};

use crate::run::RunSummary;
use crate::vfs::{fnv1a64, write_atomic, RealVfs, Vfs};

/// Version of the cached-entry schema. Bump on any change to the
/// simulator's observable behaviour, the workload models, or the
/// [`RunSummary`] layout — stale entries are then simply never looked at.
/// v2: DRAM round sampling (`dram_round_sample_cap`), the multiplicative
/// random address map, and digest-composed keys.
/// v3: FNV-1a integrity checksum on every envelope and journal record
/// (backward compatible by construction: old entries live under `v2/`
/// and are simply never read).
pub const SCHEMA_VERSION: u32 = 3;

/// The content digest keying one simulation run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct SimKey(pub u128);

impl SimKey {
    /// The key as the fixed-width hex string used for file names.
    #[must_use]
    pub fn hex(&self) -> String {
        format!("{:032x}", self.0)
    }

    /// Derives the key this run records under inside `namespace`.
    ///
    /// Fleet sweeps run the *same* characterization point on many shards;
    /// the memo cache must share those (one simulation fleet-wide), but
    /// the checkpoint journal must not — replaying shard A's point as
    /// shard B's would corrupt a resumed run if the shards ever diverge.
    /// Journal entries for namespaced executions therefore key under
    /// `key.in_namespace("shard3")` while the cache keeps the raw key.
    #[must_use]
    pub fn in_namespace(&self, namespace: &str) -> SimKey {
        let mut h = StableHasher::new();
        h.write_tag("depburst::sim_key::namespace");
        h.write_u64((self.0 >> 64) as u64);
        h.write_u64(self.0 as u64);
        h.write_str(namespace);
        SimKey(h.finish())
    }

    /// Derives the key a *sampled* execution of this point caches and
    /// journals under (see `simx::sampling`): the exact key plus the
    /// digest of the sampling configuration. A sampled result is an
    /// extrapolation, not a simulation — it must never collide with the
    /// exact entry for the same point, and two different region
    /// placements must not collide with each other. The probe/measure
    /// prefix runs themselves are plain exact runs at reduced scales and
    /// key normally.
    #[must_use]
    pub fn with_sampling(&self, sampling: u128) -> SimKey {
        let mut h = StableHasher::new();
        h.write_tag("depburst::sim_key::sampled");
        h.write_u64((self.0 >> 64) as u64);
        h.write_u64(self.0 as u64);
        h.write_u64((sampling >> 64) as u64);
        h.write_u64(sampling as u64);
        SimKey(h.finish())
    }
}

/// Stable digest of a sampled-tier configuration (the second input of
/// [`SimKey::with_sampling`]).
#[must_use]
pub fn sampling_digest(cfg: &simx::SamplingConfig) -> u128 {
    let mut h = StableHasher::new();
    cfg.hash_into(&mut h);
    h.finish()
}

/// Computes the cache key of one run: every input the simulation result
/// depends on. `fault` is the injector configuration installed on the
/// machine, if any (`None` hashes like an inert config — installing an
/// inert injector is bit-identical to not installing one).
///
/// Composed from per-input digests so sweep executors can pre-digest the
/// expensive parts (the benchmark spec and the machine config, shared by
/// hundreds of points) once and derive per-point keys with
/// [`sim_key_from_digests`] — three words hashed per point instead of a
/// full config walk.
#[must_use]
pub fn sim_key(
    bench: &Benchmark,
    machine: &MachineConfig,
    fault: Option<&FaultConfig>,
    scale: f64,
    seed: u64,
) -> SimKey {
    sim_key_from_digests(bench_digest(bench), machine.digest(), fault_digest(fault), scale, seed)
}

/// Stable digest of a benchmark's workload spec (the machine-independent
/// part of a [`sim_key`]).
#[must_use]
pub fn bench_digest(bench: &Benchmark) -> u128 {
    let mut h = StableHasher::new();
    bench.hash_into(&mut h);
    h.finish()
}

/// Stable digest of a fault-injector configuration; `None` digests like an
/// inert config, so an uninstalled injector keys identically to an
/// installed-but-inert one.
#[must_use]
pub fn fault_digest(fault: Option<&FaultConfig>) -> u128 {
    let mut h = StableHasher::new();
    fault
        .copied()
        .unwrap_or_else(|| FaultConfig::none(0))
        .hash_into(&mut h);
    h.finish()
}

/// Derives a run's key from pre-computed input digests (see [`sim_key`];
/// the machine digest is [`MachineConfig::digest`]).
#[must_use]
pub fn sim_key_from_digests(
    bench: u128,
    machine: u128,
    fault: u128,
    scale: f64,
    seed: u64,
) -> SimKey {
    let mut h = StableHasher::new();
    h.write_tag("depburst::sim_key");
    h.write_u32(SCHEMA_VERSION);
    for digest in [bench, machine, fault] {
        h.write_u64((digest >> 64) as u64);
        h.write_u64(digest as u64);
    }
    h.write_f64(scale);
    h.write_u64(seed);
    SimKey(h.finish())
}

/// The on-disk envelope around a cached summary.
#[derive(Debug, Clone, Serialize, Deserialize)]
struct CacheEnvelope {
    /// Schema version the entry was written under.
    schema: u32,
    /// Hex content key, re-checked on load (defends against renamed files).
    key: String,
    /// FNV-1a 64 digest (16 hex digits) of the serialized `summary`
    /// field, re-checked on load: bit rot anywhere in the payload is
    /// detected and the envelope quarantined, never served.
    checksum: String,
    /// The cached result.
    summary: RunSummary,
}

/// The checksum field's rendering of a serialized summary. Shared with
/// the checkpoint journal, whose records carry the same framing.
pub(crate) fn summary_checksum(summary_json: &str) -> String {
    format!("{:016x}", fnv1a64(summary_json.as_bytes()))
}

/// Composes the envelope text around an already-serialized summary,
/// byte-identical to serializing a [`CacheEnvelope`] (asserted by a
/// test) without re-walking the multi-KB summary a second time. The
/// non-payload fields are plain hex/integers, so no JSON escaping is
/// needed. Shared with the checkpoint journal: a journal record is the
/// same `{schema, key, checksum, summary}` framing, one per line.
pub(crate) fn compose_envelope(key: SimKey, checksum: &str, summary_json: &str) -> String {
    format!(
        "{{\"schema\":{SCHEMA_VERSION},\"key\":\"{}\",\"checksum\":\"{checksum}\",\"summary\":{summary_json}}}",
        key.hex()
    )
}

/// Hit/miss counters of a cache (for CI logs and tests).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CacheStats {
    /// Results served from the in-process map.
    pub memory_hits: u64,
    /// Results served from a persisted JSON envelope.
    pub disk_hits: u64,
    /// Results that had to be simulated.
    pub misses: u64,
    /// Corrupt or mismatched envelopes moved to the quarantine directory.
    pub quarantined: u64,
    /// Persist attempts that failed (serialization or I/O); the run keeps
    /// going in memory but loses that entry's warm-start.
    pub persist_failures: u64,
}

/// A content-addressed memo of simulation results: always in-process,
/// optionally persistent. Shared by reference across pool workers.
#[derive(Debug)]
pub struct SimCache {
    mem: Mutex<HashMap<u128, Arc<RunSummary>>>,
    /// Keys currently being computed, so concurrent workers hitting the
    /// same key wait for the one computation instead of duplicating it.
    in_flight: Mutex<HashSet<u128>>,
    flight_done: Condvar,
    dir: Option<PathBuf>,
    /// The storage layer all persistence I/O routes through. [`RealVfs`]
    /// by default; the storage-fault harness swaps in a `FaultyVfs`.
    vfs: Arc<dyn Vfs>,
    memory_hits: AtomicU64,
    disk_hits: AtomicU64,
    misses: AtomicU64,
    quarantined: AtomicU64,
    persist_failures: AtomicU64,
}

impl Default for SimCache {
    fn default() -> Self {
        Self::in_memory()
    }
}

impl SimCache {
    /// A purely in-process cache (no filesystem traffic).
    #[must_use]
    pub fn in_memory() -> Self {
        SimCache {
            mem: Mutex::new(HashMap::new()),
            in_flight: Mutex::new(HashSet::new()),
            flight_done: Condvar::new(),
            dir: None,
            vfs: Arc::new(RealVfs),
            memory_hits: AtomicU64::new(0),
            disk_hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            quarantined: AtomicU64::new(0),
            persist_failures: AtomicU64::new(0),
        }
    }

    /// A cache that additionally persists under `dir` (the schema
    /// subdirectory is appended automatically).
    #[must_use]
    pub fn persistent(dir: impl Into<PathBuf>) -> Self {
        let mut cache = Self::in_memory();
        cache.dir = Some(dir.into().join(format!("v{SCHEMA_VERSION}")));
        cache
    }

    /// Builds the cache the `DEPBURST_CACHE` environment variable asks
    /// for: unset, empty, or `0` → in-memory only; `1` → persist under
    /// `results/cache`; anything else → persist under that path.
    #[must_use]
    pub fn from_env() -> Self {
        match std::env::var("DEPBURST_CACHE") {
            Err(_) => Self::in_memory(),
            Ok(v) => match v.trim() {
                "" | "0" => Self::in_memory(),
                "1" => Self::persistent("results/cache"),
                path => Self::persistent(path),
            },
        }
    }

    /// Whether this cache persists entries to disk.
    #[must_use]
    pub fn is_persistent(&self) -> bool {
        self.dir.is_some()
    }

    /// Routes this cache's persistence I/O through `vfs` (builder
    /// style). The default is [`RealVfs`]; the torture harness installs
    /// a `FaultyVfs` here.
    #[must_use]
    pub fn with_vfs(mut self, vfs: Arc<dyn Vfs>) -> Self {
        self.vfs = vfs;
        self
    }

    /// Routes this cache's persistence I/O through `vfs` (in place; the
    /// `--storage-faults` flag installs the injector on an already-built
    /// context).
    pub fn set_vfs(&mut self, vfs: Arc<dyn Vfs>) {
        self.vfs = vfs;
    }

    /// The hit/miss counters so far.
    #[must_use]
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            memory_hits: self.memory_hits.load(Ordering::Relaxed),
            disk_hits: self.disk_hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            quarantined: self.quarantined.load(Ordering::Relaxed),
            persist_failures: self.persist_failures.load(Ordering::Relaxed),
        }
    }

    /// Returns the summary for `key`, computing (and memoizing) it with
    /// `compute` on a miss. Concurrent callers of the same key are
    /// deduplicated: exactly one computes while the rest block until the
    /// result lands in the memo, so the hit/miss statistics — like the
    /// results themselves — do not depend on worker scheduling.
    pub fn get_or_compute<F>(
        &self,
        key: SimKey,
        compute: F,
    ) -> depburst_core::Result<Arc<RunSummary>>
    where
        F: FnOnce() -> depburst_core::Result<RunSummary>,
    {
        loop {
            if let Some(hit) = self.mem.lock().expect("cache lock").get(&key.0) {
                self.memory_hits.fetch_add(1, Ordering::Relaxed);
                return Ok(Arc::clone(hit));
            }
            let mut flying = self.in_flight.lock().expect("flight lock");
            if flying.insert(key.0) {
                break; // this caller owns the computation
            }
            // Wait out the owner, then re-check the memo. A spurious
            // wakeup or an owner that errored just loops again.
            drop(self.flight_done.wait(flying).expect("flight lock"));
        }
        let guard = FlightGuard { cache: self, key };
        let outcome = self.load_or_compute(key, compute);
        if let Ok(summary) = &outcome {
            self.mem
                .lock()
                .expect("cache lock")
                .insert(key.0, Arc::clone(summary));
        }
        drop(guard); // release waiters only after the memo is populated
        outcome
    }

    fn load_or_compute<F>(
        &self,
        key: SimKey,
        compute: F,
    ) -> depburst_core::Result<Arc<RunSummary>>
    where
        F: FnOnce() -> depburst_core::Result<RunSummary>,
    {
        if let Some(summary) = self.load_from_disk(key) {
            self.disk_hits.fetch_add(1, Ordering::Relaxed);
            return Ok(Arc::new(summary));
        }
        self.misses.fetch_add(1, Ordering::Relaxed);
        let summary = Arc::new(compute()?);
        self.store_to_disk(key, &summary);
        Ok(summary)
    }

    fn entry_path(&self, key: SimKey) -> Option<PathBuf> {
        self.dir.as_ref().map(|d| d.join(format!("{}.json", key.hex())))
    }

    fn load_from_disk(&self, key: SimKey) -> Option<RunSummary> {
        let path = self.entry_path(key)?;
        // An absent entry is the ordinary cold-cache case, not corruption.
        let bytes = self.vfs.read(&path).ok()?;
        match serde_json::from_slice::<CacheEnvelope>(&bytes) {
            Ok(envelope) if envelope.schema == SCHEMA_VERSION && envelope.key == key.hex() => {
                // Integrity framing: the checksum was computed over the
                // summary's serialization at store time. Re-serializing
                // the parsed summary reproduces those exact bytes (the
                // shim serializer is canonical and summaries roundtrip
                // with exact f64 bit patterns — asserted by the golden
                // suite), so any bit flip in the payload since the write
                // lands here instead of in an experiment's numbers.
                let reserialized = serde_json::to_string(&envelope.summary).ok()?;
                let computed = summary_checksum(&reserialized);
                if computed == envelope.checksum {
                    Some(envelope.summary)
                } else {
                    self.quarantine(
                        &path,
                        &format!(
                            "checksum mismatch (stored {}, computed {computed})",
                            envelope.checksum
                        ),
                    );
                    None
                }
            }
            Ok(envelope) => {
                // Stale schema or a renamed file: quarantine rather than
                // leave a permanently-unusable entry shadowing the slot.
                self.quarantine(
                    &path,
                    &format!(
                        "envelope mismatch (schema {}, key {})",
                        envelope.schema, envelope.key
                    ),
                );
                None
            }
            Err(parse_err) => {
                self.quarantine(&path, &parse_err.to_string());
                None
            }
        }
    }

    /// Moves a corrupt or mismatched envelope aside — to
    /// `<cache-root>/quarantine/` — so the slot can be recomputed and the
    /// bad bytes stay available for diagnosis, and says so once on stderr.
    /// Silently degrading to in-memory (the old behaviour) hid real
    /// corruption *and* threw persistence away for the whole process.
    fn quarantine(&self, path: &Path, why: &str) {
        self.quarantined.fetch_add(1, Ordering::Relaxed);
        let Some(schema_dir) = self.dir.as_deref() else {
            return;
        };
        let qdir = schema_dir.parent().unwrap_or(schema_dir).join("quarantine");
        let dest = qdir.join(path.file_name().unwrap_or_default());
        let moved = self
            .vfs
            .create_dir_all(&qdir)
            .and_then(|()| self.vfs.rename(path, &dest));
        match moved {
            Ok(()) => eprintln!(
                "warning: quarantined corrupt cache entry {} -> {}: {why}",
                path.display(),
                dest.display()
            ),
            Err(io_err) => eprintln!(
                "warning: corrupt cache entry {} ({why}) could not be quarantined: {io_err}",
                path.display()
            ),
        }
    }

    /// Best-effort persistence: a full results directory or read-only
    /// checkout must never fail the experiment itself — but dropped
    /// persist attempts are counted (and the CLI warns) instead of being
    /// silently discarded.
    fn store_to_disk(&self, key: SimKey, summary: &RunSummary) {
        let Some(path) = self.entry_path(key) else {
            return;
        };
        // Serialize the summary once; the envelope is composed around it
        // (rather than cloning the summary into a CacheEnvelope and
        // walking it a second time) and the checksum covers exactly the
        // bytes between `"summary":` and the closing brace.
        let Ok(summary_json) = serde_json::to_string(summary) else {
            self.persist_failures.fetch_add(1, Ordering::Relaxed);
            return;
        };
        let json = compose_envelope(key, &summary_checksum(&summary_json), &summary_json);
        if let Some(parent) = path.parent() {
            let _ = self.vfs.create_dir_all(parent); // a failure surfaces in the write below
        }
        if write_atomic(self.vfs.as_ref(), &path, json.as_bytes()).is_err() {
            self.persist_failures.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Quarantines `key`'s cache envelope (and drops the in-process
    /// entry): the slot's persisted bytes move to
    /// `<cache-root>/quarantine/` exactly like a corrupt envelope's
    /// would. Used when an invariant violation is discovered mid-sweep —
    /// the entry's inputs produced self-inconsistent physics, so neither
    /// this run nor a later resume should trust the envelope. A no-op
    /// beyond the counter when the cache is in-memory or the slot was
    /// never persisted.
    pub fn quarantine_key(&self, key: SimKey, why: &str) {
        self.mem.lock().expect("cache lock").remove(&key.0);
        if let Some(path) = self.entry_path(key) {
            if self.vfs.exists(&path) {
                self.quarantine(&path, why);
                return;
            }
        }
        // Still count the event so the failure report's `quarantined`
        // field reflects every envelope withdrawn from service.
        self.quarantined.fetch_add(1, Ordering::Relaxed);
    }

    /// Seeds the in-process memo with a summary replayed from a
    /// checkpoint journal (no disk-cache traffic, no stats impact beyond
    /// later memory hits). First write wins, matching `get_or_compute`.
    pub fn seed(&self, key: SimKey, summary: &Arc<RunSummary>) {
        self.mem
            .lock()
            .expect("cache lock")
            .entry(key.0)
            .or_insert_with(|| Arc::clone(summary));
    }

    /// Looks up `key` in the in-process memo only (no disk traffic, no
    /// stats impact). Used by the journal-replay fast path.
    #[must_use]
    pub fn peek(&self, key: SimKey) -> Option<Arc<RunSummary>> {
        self.mem.lock().expect("cache lock").get(&key.0).cloned()
    }
}

/// Removes a key from the in-flight set on scope exit — including an
/// unwinding `compute` — so waiters blocked on the same key never hang.
struct FlightGuard<'a> {
    cache: &'a SimCache,
    key: SimKey,
}

impl Drop for FlightGuard<'_> {
    fn drop(&mut self) {
        self.cache
            .in_flight
            .lock()
            .expect("flight lock")
            .remove(&self.key.0);
        self.cache.flight_done.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dacapo_sim::benchmark;

    fn key_for(seed: u64) -> SimKey {
        sim_key(
            benchmark("lusearch").expect("exists"),
            &MachineConfig::haswell_quad(),
            None,
            0.05,
            seed,
        )
    }

    fn dummy_summary(marker: u64) -> RunSummary {
        RunSummary {
            exec: dvfs_trace::TimeDelta::from_millis(marker as f64),
            gc_time: dvfs_trace::TimeDelta::ZERO,
            gc_count: marker,
            allocated: 0,
            total_active: dvfs_trace::TimeDelta::ZERO,
            trace: dvfs_trace::ExecutionTrace {
                base: dvfs_trace::Freq::from_ghz(1.0),
                start: dvfs_trace::Time::ZERO,
                total: dvfs_trace::TimeDelta::ZERO,
                epochs: vec![],
                markers: vec![],
                threads: vec![],
            },
            sampled: None,
        }
    }

    #[test]
    fn memoizes_in_process() {
        let cache = SimCache::in_memory();
        let mut computes = 0;
        for _ in 0..3 {
            let s = cache
                .get_or_compute(key_for(1), || {
                    computes += 1;
                    Ok(dummy_summary(42))
                })
                .expect("ok");
            assert_eq!(s.gc_count, 42);
        }
        assert_eq!(computes, 1);
        let stats = cache.stats();
        assert_eq!(stats.misses, 1);
        assert_eq!(stats.memory_hits, 2);
    }

    #[test]
    fn errors_are_not_cached() {
        let cache = SimCache::in_memory();
        let r = cache.get_or_compute(key_for(2), || {
            Err(depburst_core::DepburstError::Machine {
                detail: "boom".into(),
            })
        });
        assert!(r.is_err());
        let s = cache
            .get_or_compute(key_for(2), || Ok(dummy_summary(7)))
            .expect("retry succeeds");
        assert_eq!(s.gc_count, 7);
    }

    #[test]
    fn persists_and_reloads_across_instances() {
        let dir = std::env::temp_dir().join(format!("depburst-cache-test-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let writer = SimCache::persistent(&dir);
        writer
            .get_or_compute(key_for(3), || Ok(dummy_summary(9)))
            .expect("ok");
        // A second instance (fresh process, same directory) hits disk.
        let reader = SimCache::persistent(&dir);
        let s = reader
            .get_or_compute(key_for(3), || panic!("must not recompute"))
            .expect("ok");
        assert_eq!(s.gc_count, 9);
        assert_eq!(reader.stats().disk_hits, 1);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn corrupt_or_mismatched_entries_recompute() {
        let dir = std::env::temp_dir().join(format!("depburst-cache-bad-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let cache = SimCache::persistent(&dir);
        let path = cache.entry_path(key_for(4)).expect("persistent");
        std::fs::create_dir_all(path.parent().expect("parent")).expect("mkdir");
        std::fs::write(&path, b"{ not json").expect("write");
        let s = cache
            .get_or_compute(key_for(4), || Ok(dummy_summary(11)))
            .expect("ok");
        assert_eq!(s.gc_count, 11);
        assert_eq!(cache.stats().misses, 1);
        // The corrupt bytes were moved aside, not deleted or left in place.
        assert_eq!(cache.stats().quarantined, 1);
        let quarantined = dir
            .join("quarantine")
            .join(path.file_name().expect("file name"));
        assert_eq!(
            std::fs::read(&quarantined).expect("quarantined file exists"),
            b"{ not json"
        );
        // The recompute re-persisted a good envelope in the original slot.
        let fresh = SimCache::persistent(&dir);
        let replayed = fresh
            .get_or_compute(key_for(4), || panic!("must hit disk"))
            .expect("ok");
        assert_eq!(replayed.gc_count, 11);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn composed_envelope_matches_the_derived_serializer() {
        // `store_to_disk` composes the envelope text manually around the
        // once-serialized summary; the loader parses it with the derived
        // Deserialize. The two must agree byte-for-byte, or the checksum
        // verified on load would not be the checksum computed at store.
        let summary = dummy_summary(23);
        let summary_json = serde_json::to_string(&summary).expect("serialize");
        let checksum = summary_checksum(&summary_json);
        let composed = compose_envelope(key_for(1), &checksum, &summary_json);
        let parsed: CacheEnvelope = serde_json::from_str(&composed).expect("parses");
        assert_eq!(parsed.schema, SCHEMA_VERSION);
        assert_eq!(parsed.key, key_for(1).hex());
        assert_eq!(parsed.checksum, checksum);
        assert_eq!(parsed.summary, summary);
        assert_eq!(
            serde_json::to_string(&parsed).expect("re-serialize"),
            composed,
            "manual composition is byte-identical to the derived serializer"
        );
    }

    #[test]
    fn checksum_framing_detects_payload_bit_flips() {
        let dir =
            std::env::temp_dir().join(format!("depburst-cache-flip-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let writer = SimCache::persistent(&dir);
        writer
            .get_or_compute(key_for(12), || Ok(dummy_summary(31)))
            .expect("ok");
        let path = writer.entry_path(key_for(12)).expect("persistent");
        let good = std::fs::read(&path).expect("envelope");
        // Flip one bit inside the payload (past the header fields) such
        // that the envelope still parses: pick a digit of a number after
        // the `"summary":` marker, so the checksum branch (not the
        // schema/key mismatch branch) is the one that must catch it.
        let text = String::from_utf8(good.clone()).expect("utf8");
        let payload_at = text.find("\"summary\":").expect("summary field");
        let pos = payload_at
            + good[payload_at..]
                .iter()
                .position(|b| b.is_ascii_digit())
                .expect("numbers in payload");
        let mut bad = good.clone();
        bad[pos] ^= 0x01; // '0' <-> '1', '2' <-> '3', ... stays a digit
        assert_ne!(bad, good);
        std::fs::write(&path, &bad).expect("corrupt");
        let reader = SimCache::persistent(&dir);
        let served = reader
            .get_or_compute(key_for(12), || Ok(dummy_summary(31)))
            .expect("recomputes");
        assert_eq!(served.gc_count, 31, "served from recompute, not the flipped bytes");
        let stats = reader.stats();
        assert_eq!(stats.disk_hits, 0, "the corrupt envelope must not count as a hit");
        assert_eq!(stats.quarantined, 1);
        assert_eq!(stats.misses, 1);
        assert_eq!(
            std::fs::read(dir.join("quarantine").join(path.file_name().expect("name")))
                .expect("quarantined"),
            bad
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn failed_persist_attempts_are_counted_not_silent() {
        // Make the schema directory path unusable by planting a regular
        // file where the directory should go: every persist must fail.
        let root =
            std::env::temp_dir().join(format!("depburst-cache-ro-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&root);
        std::fs::create_dir_all(&root).expect("mkdir");
        std::fs::write(root.join(format!("v{SCHEMA_VERSION}")), b"in the way").expect("plant");
        let cache = SimCache::persistent(&root);
        let s = cache
            .get_or_compute(key_for(6), || Ok(dummy_summary(21)))
            .expect("the experiment itself must not fail");
        assert_eq!(s.gc_count, 21);
        assert_eq!(cache.stats().persist_failures, 1);
        let _ = std::fs::remove_dir_all(&root);
    }

    #[test]
    fn seed_and_peek_bypass_disk_and_stats() {
        let cache = SimCache::in_memory();
        assert!(cache.peek(key_for(8)).is_none());
        let summary = Arc::new(dummy_summary(5));
        cache.seed(key_for(8), &summary);
        assert_eq!(cache.peek(key_for(8)).expect("seeded").gc_count, 5);
        // First write wins: re-seeding does not replace the entry.
        cache.seed(key_for(8), &Arc::new(dummy_summary(99)));
        assert_eq!(cache.peek(key_for(8)).expect("seeded").gc_count, 5);
        assert_eq!(cache.stats(), CacheStats::default(), "no stats impact");
        // get_or_compute then serves the seeded entry as a memory hit.
        let served = cache
            .get_or_compute(key_for(8), || panic!("must not recompute"))
            .expect("ok");
        assert_eq!(served.gc_count, 5);
        assert_eq!(cache.stats().memory_hits, 1);
    }

    #[test]
    fn quarantine_key_withdraws_the_envelope_and_memo_entry() {
        let dir = std::env::temp_dir().join(format!("depburst-cache-q-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let cache = SimCache::persistent(&dir);
        cache
            .get_or_compute(key_for(7), || Ok(dummy_summary(17)))
            .expect("ok");
        let path = cache.entry_path(key_for(7)).expect("persistent");
        assert!(path.exists());
        cache.quarantine_key(key_for(7), "invariant violation [test]");
        assert!(!path.exists(), "envelope moved out of the slot");
        assert!(dir
            .join("quarantine")
            .join(path.file_name().expect("file name"))
            .exists());
        assert!(cache.peek(key_for(7)).is_none(), "memo entry dropped");
        assert_eq!(cache.stats().quarantined, 1);
        // In-memory caches only count the event.
        let mem = SimCache::in_memory();
        mem.quarantine_key(key_for(7), "whatever");
        assert_eq!(mem.stats().quarantined, 1);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn concurrent_same_key_computes_once() {
        use std::sync::atomic::{AtomicU64, Ordering};

        let cache = SimCache::in_memory();
        let computes = AtomicU64::new(0);
        std::thread::scope(|scope| {
            for _ in 0..4 {
                scope.spawn(|| {
                    let s = cache
                        .get_or_compute(key_for(5), || {
                            computes.fetch_add(1, Ordering::SeqCst);
                            // Widen the race window: without in-flight
                            // dedup every thread would land in here.
                            std::thread::sleep(std::time::Duration::from_millis(20));
                            Ok(dummy_summary(13))
                        })
                        .expect("ok");
                    assert_eq!(s.gc_count, 13);
                });
            }
        });
        assert_eq!(computes.load(Ordering::SeqCst), 1, "one computation total");
        let stats = cache.stats();
        assert_eq!(stats.misses, 1);
        assert_eq!(stats.memory_hits, 3);
    }

    #[test]
    fn pre_digested_keys_match_the_direct_form() {
        let mc = MachineConfig::haswell_quad();
        let lu = benchmark("lusearch").expect("exists");
        let bd = bench_digest(lu);
        let md = mc.digest();
        let fd = fault_digest(None);
        assert_eq!(
            sim_key(lu, &mc, None, 0.25, 7),
            sim_key_from_digests(bd, md, fd, 0.25, 7)
        );
        // The inert-injector equivalence holds through the digest form.
        let inert = FaultConfig::none(0);
        assert_eq!(fault_digest(Some(&inert)), fd);
    }

    #[test]
    fn sampled_keys_never_collide_with_exact_or_each_other() {
        let base = key_for(1);
        let cfg = simx::SamplingConfig::default();
        let sampled = base.with_sampling(sampling_digest(&cfg));
        assert_ne!(sampled, base, "sampled result must not shadow the exact one");
        let wider = simx::SamplingConfig {
            measure_fraction: 0.5,
            ..cfg
        };
        assert_ne!(
            base.with_sampling(sampling_digest(&wider)),
            sampled,
            "different region placements are different results"
        );
        assert_eq!(base.with_sampling(sampling_digest(&cfg)), sampled);
        assert_ne!(base.in_namespace("x"), sampled);
    }

    #[test]
    fn keys_separate_benchmarks_and_seeds() {
        let mc = MachineConfig::haswell_quad();
        let lu = benchmark("lusearch").expect("exists");
        let sf = benchmark("sunflow").expect("exists");
        assert_ne!(sim_key(lu, &mc, None, 0.05, 1), sim_key(sf, &mc, None, 0.05, 1));
        assert_ne!(key_for(1), key_for(2));
        assert_eq!(key_for(1), key_for(1));
    }
}
