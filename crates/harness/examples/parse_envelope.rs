//! Micro-benchmark: time deserializing a persisted cache envelope (or any
//! `RunSummary` JSON) through the vendored serde_json shim.
//!
//! ```text
//! cargo run --release -p harness --example parse_envelope -- <file.json> [summary]
//! ```

use std::time::Instant;

use harness::run::RunSummary;
use serde::Deserialize;

#[derive(Deserialize)]
struct Envelope {
    schema: u32,
    key: String,
    summary: RunSummary,
}

fn main() {
    let mut args = std::env::args().skip(1);
    let path = args.next().expect("usage: parse_envelope <file.json> [summary]");
    let as_summary = args.next().as_deref() == Some("summary");
    let bytes = std::fs::read(&path).expect("read input");
    let t0 = Instant::now();
    let epochs = if as_summary {
        let summary: RunSummary = serde_json::from_slice(&bytes).expect("parse summary");
        summary.trace.epochs.len()
    } else {
        let envelope: Envelope = serde_json::from_slice(&bytes).expect("parse envelope");
        assert!(!envelope.key.is_empty());
        assert!(envelope.schema >= 1);
        envelope.summary.trace.epochs.len()
    };
    println!(
        "{path}: {} bytes, {epochs} epochs, parsed in {:.3}s",
        bytes.len(),
        t0.elapsed().as_secs_f64()
    );
}
