//! Replays every envelope in a persistent cache directory through
//! `SimCache::get_or_compute`, timing each disk hit. The compute closure
//! panics, so a miss means the envelope failed to load.
//!
//! ```text
//! cargo run --release -p harness --example warm_replay -- <cache-root>
//! ```

use std::time::Instant;

use harness::{SimCache, SimKey};

fn main() {
    let root = std::env::args().nth(1).expect("usage: warm_replay <cache-root>");
    let cache = SimCache::persistent(&root);
    let dir = std::path::Path::new(&root).join("v1");
    let mut entries: Vec<_> = std::fs::read_dir(&dir)
        .expect("cache dir exists")
        .map(|e| e.expect("dir entry").path())
        .filter(|p| p.extension().is_some_and(|e| e == "json"))
        .collect();
    entries.sort();
    for path in entries {
        let stem = path.file_stem().expect("stem").to_string_lossy();
        let key = SimKey(u128::from_str_radix(&stem, 16).expect("hex key"));
        let t0 = Instant::now();
        let summary = cache
            .get_or_compute(key, || panic!("envelope {stem} missed"))
            .expect("load succeeds");
        println!(
            "{stem}: {} epochs in {:.3}s",
            summary.trace.epochs.len(),
            t0.elapsed().as_secs_f64()
        );
    }
    println!("stats: {:?}", cache.stats());
}
