//! Storage-layer integration tests: quarantine semantics under
//! concurrent loaders, and the crash → fail-closed → resume →
//! byte-identical contract end to end through [`ExecCtx`].

use std::sync::{Arc, Barrier};

use harness::{
    ExecCtx, FailureCause, FaultyVfs, Journal, RetryPolicy, RunConfig, SimCache, SimKey,
    SimPoint, StorageFaultConfig, SweepPlan,
};

const SCALE: f64 = 0.01;

/// One genuinely simulated summary to seed cache slots with.
fn real_summary() -> harness::RunSummary {
    let bench = dacapo_sim::benchmark("lusearch").expect("lusearch exists");
    harness::try_run_benchmark(
        bench,
        RunConfig {
            freq: dvfs_trace::Freq::from_ghz(2.0),
            scale: SCALE,
            seed: 1,
        },
    )
    .expect("clean run")
    .summarize()
}

/// Plants `bytes` in `key`'s envelope slot of a persistent cache rooted
/// at `dir`, replacing whatever a seeding pass stored there.
fn plant(dir: &std::path::Path, key: SimKey, truth: &harness::RunSummary, mutate: impl Fn(&mut Vec<u8>)) {
    let seeder = SimCache::persistent(dir);
    let truth = truth.clone();
    seeder
        .get_or_compute(key, || Ok(truth))
        .expect("seeding store succeeds");
    let slot = dir
        .join(format!("v{}", harness::cache::SCHEMA_VERSION))
        .join(format!("{}.json", key.hex()));
    let mut bytes = std::fs::read(&slot).expect("seeded envelope exists");
    mutate(&mut bytes);
    std::fs::write(&slot, &bytes).expect("plant corrupt envelope");
}

/// Races `n` fresh cache instances (distinct processes in spirit: no
/// shared memo, no shared in-flight table) against one bad envelope and
/// checks the quarantine fired exactly once and every loader got the
/// truth by recomputing, never the bad bytes.
fn race_loaders(dir: &std::path::Path, key: SimKey, truth: &harness::RunSummary, n: usize) {
    let barrier = Barrier::new(n);
    std::thread::scope(|scope| {
        for _ in 0..n {
            scope.spawn(|| {
                let cache = SimCache::persistent(dir);
                barrier.wait();
                let truth_for_miss = truth.clone();
                let served = cache
                    .get_or_compute(key, || Ok(truth_for_miss))
                    .expect("loader succeeds");
                assert_eq!(
                    serde_json::to_string(&*served).expect("serializes"),
                    serde_json::to_string(truth).expect("serializes"),
                    "a loader was served something other than the truth"
                );
            });
        }
    });
    let quarantine: Vec<_> = std::fs::read_dir(dir.join("quarantine"))
        .expect("quarantine dir exists")
        .collect();
    assert_eq!(
        quarantine.len(),
        1,
        "the bad envelope must land in quarantine exactly once"
    );
    // Whoever recomputed re-persisted a good envelope: a later cache
    // serves the slot from disk without quarantining anything.
    let fresh = SimCache::persistent(dir);
    let truth_unused = truth.clone();
    fresh
        .get_or_compute(key, || Ok(truth_unused))
        .expect("replay succeeds");
    let stats = fresh.stats();
    assert_eq!(stats.disk_hits, 1, "healed slot must replay from disk");
    assert_eq!(stats.quarantined, 0);
}

#[test]
fn corrupt_envelopes_quarantine_exactly_once_under_concurrent_loaders() {
    let dir = std::env::temp_dir().join(format!("depburst-storage-race-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let truth = real_summary();
    let key = SimKey(0xDEAD_BEEF);
    // Flip one payload bit: the checksum must catch it.
    plant(&dir, key, &truth, |bytes| {
        let at = bytes.len() - bytes.len() / 4;
        bytes[at] ^= 0x01;
    });
    race_loaders(&dir, key, &truth, 2);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn stale_schema_envelopes_quarantine_exactly_once_under_concurrent_loaders() {
    let dir = std::env::temp_dir().join(format!("depburst-storage-stale-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let truth = real_summary();
    let key = SimKey(0xCAFE);
    // A valid envelope whose schema predates the current format.
    plant(&dir, key, &truth, |bytes| {
        let text = String::from_utf8(bytes.clone()).expect("utf8 envelope");
        let marker = format!("\"schema\":{}", harness::cache::SCHEMA_VERSION);
        assert!(text.contains(&marker), "envelope must carry its schema");
        *bytes = text.replacen(&marker, "\"schema\":1", 1).into_bytes();
    });
    race_loaders(&dir, key, &truth, 2);
    let _ = std::fs::remove_dir_all(&dir);
}

/// The end-to-end crash contract: a sweep dying at a crash point fails
/// closed with structured [`FailureCause::Storage`] failures, and a
/// resumed run over the surviving bytes is byte-identical to an
/// uninterrupted one — replaying what was durably committed instead of
/// re-simulating it.
#[test]
fn crash_interrupted_sweep_fails_closed_then_resumes_byte_identical() {
    let dir = std::env::temp_dir().join(format!("depburst-storage-crash-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let cache_dir = dir.join("cache");
    let journal_path = dir.join("run.jsonl");

    let mut plan = SweepPlan::new();
    for name in ["lusearch", "sunflow"] {
        let bench = dacapo_sim::benchmark(name).expect("benchmark exists");
        for ghz in [1.0, 4.0] {
            plan.push(SimPoint::new(bench, dvfs_trace::Freq::from_ghz(ghz), SCALE, 1));
        }
    }
    let reference: Vec<String> = ExecCtx::sequential()
        .execute(&plan)
        .expect("reference sweep")
        .iter()
        .map(|s| serde_json::to_string(&**s).expect("serializes"))
        .collect();

    // Crash after the first point's envelope commit (ops: journal
    // create_dir_all + write, then read-miss + create_dir_all + write +
    // rename for the first envelope = 6) — the first journal append is
    // the op that dies.
    let faulty = Arc::new(FaultyVfs::new(StorageFaultConfig::crash_at(6, 99)));
    let ctx = ExecCtx::new(1)
        .with_policy(RetryPolicy::none())
        .with_cache(SimCache::persistent(&cache_dir))
        .with_storage(Arc::clone(&faulty));
    let journal = Journal::create_at_with(&journal_path, ctx.storage_vfs()).expect("journal");
    let ctx = ctx.with_journal(journal);
    let crashed = ctx.execute(&plan);
    assert!(crashed.is_err(), "a crashed sweep must not return results");
    assert!(faulty.crashed());
    let failures = ctx.failures();
    assert!(!failures.is_empty());
    assert!(
        failures.iter().all(|f| f.cause == FailureCause::Storage),
        "every post-crash failure must be structured as Storage: {failures:?}"
    );

    // "Reboot": plain filesystem over whatever survived the power loss.
    let resumed_ctx = ExecCtx::new(1)
        .with_cache(SimCache::persistent(&cache_dir))
        .with_journal(Journal::resume_at(&journal_path).expect("resume journal"));
    let resumed: Vec<String> = resumed_ctx
        .execute(&plan)
        .expect("resumed sweep completes")
        .iter()
        .map(|s| serde_json::to_string(&**s).expect("serializes"))
        .collect();
    assert_eq!(reference, resumed, "resumed sweep must be byte-identical");
    let stats = resumed_ctx.cache.stats();
    assert!(
        stats.disk_hits >= 1,
        "the envelope committed before the crash must replay from disk"
    );
    assert!(stats.misses >= 1, "the lost tail must re-simulate");
    assert_eq!(stats.quarantined, 0, "committed envelopes must verify clean");

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn storage_cause_serializes_structurally() {
    assert_eq!(
        serde_json::to_string(&FailureCause::Storage).expect("serializes"),
        "\"Storage\""
    );
}
