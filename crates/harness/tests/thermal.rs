//! Thermal & power-integrity acceptance tests: the thermal stack on a
//! synthetic fleet is deterministic, its extended telemetry only
//! appears when armed, the storm actually heats machines and engages
//! the throttle/breaker machinery, and a whole fuzz campaign of
//! structured fleet cases survives the fleet invariants. The heavy
//! characterization-backed matrix lives in the `thermal` binary and its
//! CI gate; these tests pin the layer's semantics in milliseconds.

use harness::experiments::fleet;
use harness::fuzz::{self, FleetFuzzCase};
use simx::ThermalConfig;

/// A storm that exercises hierarchy, thermal, and every chaos class.
fn stormy() -> FleetFuzzCase {
    FleetFuzzCase {
        machines: 6,
        shards: 2,
        regions: 3,
        rounds: 60,
        seed: 1,
        hierarchy: true,
        thermal: true,
        chaos_milli: 400,
        brownout_milli: 600,
        aggregator_milli: 600,
        sensor_milli: 300,
        outage_rounds: 16,
        budget_w_per_machine: 60,
        profiles: vec![0, 1],
    }
}

#[test]
fn thermal_storm_fleet_is_deterministic() {
    let case = stormy();
    let a = fleet::run_synthetic(&case.config(), &case.params()).expect("run a");
    let b = fleet::run_synthetic(&case.config(), &case.params()).expect("run b");
    assert_eq!(
        serde_json::to_string(&a).expect("a"),
        serde_json::to_string(&b).expect("b"),
        "thermal fleet must be a pure function of its config"
    );
}

#[test]
fn thermal_storm_heats_machines_and_engages_the_ladder() {
    let case = stormy();
    let report = fleet::run_synthetic(&case.config(), &case.params()).expect("storm survives");
    let s = &report.summary;
    let ambient_mc = ThermalConfig::datacenter(case.seed).ambient_mc;
    let peak = s.peak_temp_mc.expect("extended run reports peak temp");
    assert!(
        peak > ambient_mc,
        "storm must heat machines past ambient ({peak} <= {ambient_mc})"
    );
    // The power-integrity machinery is live: budget-oblivious heat under
    // long brownout/aggregator outages must trip the overshoot breaker.
    assert!(
        s.breaker_trips.expect("extended run reports trips") > 0,
        "storm drove no breaker trips"
    );
    // The strict lens can only be tighter: it counts down rounds as
    // misses where the legacy lens drops them from the denominator.
    let strict = s.strict_slo_attainment.expect("extended run reports strict SLO");
    assert!(strict <= s.slo_attainment + 1e-12);
    assert!(s.brownout_rounds.expect("extended run counts brownouts") > 0);
}

#[test]
fn disabled_thermal_layer_reports_no_extended_telemetry() {
    let case = FleetFuzzCase {
        hierarchy: false,
        thermal: false,
        regions: 1,
        brownout_milli: 0,
        aggregator_milli: 0,
        sensor_milli: 0,
        ..stormy()
    };
    assert!(!case.config().extended(), "nothing opted in");
    let report = fleet::run_synthetic(&case.config(), &case.params()).expect("legacy run");
    let s = &report.summary;
    assert_eq!(s.peak_temp_mc, None);
    assert_eq!(s.strict_slo_attainment, None);
    assert_eq!(s.emergency_throttles, None);
    assert_eq!(s.black_starts, None);
    assert_eq!(s.breaker_trips, None);
    assert_eq!(s.brownout_rounds, None);
}

#[test]
fn fleet_fuzz_campaign_stays_clean_across_the_grammar() {
    // 50 structured cases across topologies, chaos classes, and the
    // thermal switch: zero invariant violations. CI runs the 200-case
    // campaign through the binary; this keeps the property in the test
    // suite proper.
    let findings = fuzz::run_fleet_campaign(1, 50, false, None);
    for finding in &findings {
        assert!(
            finding.violation.is_none(),
            "case {} violated: {:?}",
            finding.index,
            finding.violation
        );
    }
}

#[test]
fn leak_factor_is_identity_when_disabled_and_compounds_when_hot() {
    use simx::ThermalModel;
    let mut off = ThermalModel::new(ThermalConfig::disabled(), 0);
    off.update(80_000);
    assert!((off.leak_factor() - 1.0).abs() < 1e-12, "disabled model must not leak");

    let mut hot = ThermalModel::new(ThermalConfig::datacenter(1), 0);
    // Drive well past T_cap so the leakage multiplier engages.
    for _ in 0..40 {
        hot.update(90_000);
    }
    let _ = hot.read_sensor(false);
    assert!(
        hot.leak_factor() > 1.0,
        "hot model must report a leakage-inflated draw (got {})",
        hot.leak_factor()
    );
}
