//! Golden-trace determinism suite.
//!
//! Two benchmarks (one memory-bound, one compute-bound) at two
//! frequencies, tiny scale, serialized as JSON and compared **byte for
//! byte** against checked-in goldens under `tests/goldens/`. The JSON
//! shim prints floats with the shortest exact-roundtrip representation,
//! so byte equality of the files is equivalent to bit-pattern equality
//! of every `f64` in the summaries; the summary-level fields are also
//! compared through `f64::to_bits` explicitly.
//!
//! Regenerate after an intentional simulator change with:
//!
//! ```text
//! UPDATE_GOLDENS=1 cargo test -p harness --test golden
//! ```

use std::fs;
use std::path::PathBuf;

use dvfs_trace::Freq;
use harness::run::RunSummary;
use harness::{ExecCtx, SimPoint, SweepPlan};

/// The golden grid: (benchmark, GHz). Scale and seed are fixed below.
const GRID: [(&str, f64); 4] = [
    ("lusearch", 1.0),
    ("lusearch", 4.0),
    ("sunflow", 1.0),
    ("sunflow", 4.0),
];
const SCALE: f64 = 0.05;
const SEED: u64 = 1;

fn golden_path(bench: &str, ghz: f64) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests/goldens")
        .join(format!("{bench}_{ghz:.0}ghz.json"))
}

fn compute_summaries() -> Vec<std::sync::Arc<RunSummary>> {
    let ctx = ExecCtx::sequential();
    let mut plan = SweepPlan::new();
    for (name, ghz) in GRID {
        let bench = dacapo_sim::benchmark(name).expect("golden benchmark exists");
        plan.push(SimPoint::new(bench, Freq::from_ghz(ghz), SCALE, SEED));
    }
    ctx.execute(&plan).expect("golden runs succeed")
}

#[test]
fn summaries_match_goldens() {
    let updating = std::env::var("UPDATE_GOLDENS").ok().as_deref() == Some("1");
    let results = compute_summaries();
    let mut mismatches = Vec::new();
    for ((name, ghz), summary) in GRID.iter().zip(&results) {
        let json = serde_json::to_string_pretty(&**summary).expect("summary serializes");
        let path = golden_path(name, *ghz);
        if updating {
            fs::create_dir_all(path.parent().expect("goldens dir")).expect("mkdir goldens");
            fs::write(&path, &json).expect("write golden");
            continue;
        }
        let want = fs::read_to_string(&path).unwrap_or_else(|_| {
            panic!(
                "missing golden {}; regenerate with UPDATE_GOLDENS=1 cargo test -p harness --test golden",
                path.display()
            )
        });
        if want != json {
            // Pinpoint the first diverging line so a drift report is
            // readable without a JSON diff tool.
            let line = want
                .lines()
                .zip(json.lines())
                .position(|(a, b)| a != b)
                .map_or(0, |i| i + 1);
            mismatches.push(format!("{name} @ {ghz} GHz (first differing line {line})"));
        }
    }
    assert!(
        mismatches.is_empty(),
        "golden drift in: {}. If the simulator change is intentional, regenerate with \
         UPDATE_GOLDENS=1 cargo test -p harness --test golden",
        mismatches.join(", ")
    );
}

#[test]
fn golden_grid_is_clean_under_the_full_invariant_monitor() {
    // The golden configurations are the repo's reference physics: every
    // invariant the monitor knows must hold on them at the strictest
    // tier. A violation here is a simulator bug (or an over-tight
    // tolerance), never acceptable drift.
    for (name, ghz) in GRID {
        let bench = dacapo_sim::benchmark(name).expect("golden benchmark exists");
        let config = harness::RunConfig {
            freq: Freq::from_ghz(ghz),
            scale: SCALE,
            seed: SEED,
        };
        harness::try_run_benchmark_monitored(bench, config, simx::InvariantMode::Full)
            .unwrap_or_else(|e| panic!("{name} @ {ghz} GHz violates an invariant: {e}"));
    }
}

#[test]
fn every_invariant_tier_produces_byte_identical_summaries() {
    // The batched counter harvest accumulates per-slice counters on the
    // core bank and copies them back to threads only at slice boundaries —
    // but the invariant monitor (and `Machine::stats`) read cumulative
    // counters *mid-run*. This test proves the harvest path is observation
    // independent: every monitor tier, including the tiers that read
    // counters at each harvest, serializes to the exact same bytes.
    for (name, ghz) in GRID {
        let bench = dacapo_sim::benchmark(name).expect("golden benchmark exists");
        let config = harness::RunConfig {
            freq: Freq::from_ghz(ghz),
            scale: SCALE,
            seed: SEED,
        };
        let tiers = [
            simx::InvariantMode::Off,
            simx::InvariantMode::Cheap,
            simx::InvariantMode::Full,
        ];
        let jsons: Vec<String> = tiers
            .iter()
            .map(|&mode| {
                let r = harness::try_run_benchmark_monitored(bench, config, mode)
                    .unwrap_or_else(|e| panic!("{name} @ {ghz} GHz under {mode:?}: {e}"));
                serde_json::to_string_pretty(&r.summarize()).expect("summary serializes")
            })
            .collect();
        assert_eq!(jsons[0], jsons[1], "{name} @ {ghz} GHz: off vs cheap tier drift");
        assert_eq!(jsons[0], jsons[2], "{name} @ {ghz} GHz: off vs full tier drift");
    }
}

#[test]
fn goldens_roundtrip_with_exact_f64_bits() {
    if std::env::var("UPDATE_GOLDENS").ok().as_deref() == Some("1") {
        return; // goldens are being rewritten by the other test
    }
    let results = compute_summaries();
    for ((name, ghz), summary) in GRID.iter().zip(&results) {
        let path = golden_path(name, *ghz);
        let Ok(text) = fs::read_to_string(&path) else {
            panic!("missing golden {}", path.display());
        };
        let stored: RunSummary = serde_json::from_str(&text).expect("golden parses");
        for (field, ours, theirs) in [
            ("exec", summary.exec.as_secs(), stored.exec.as_secs()),
            ("gc_time", summary.gc_time.as_secs(), stored.gc_time.as_secs()),
            (
                "total_active",
                summary.total_active.as_secs(),
                stored.total_active.as_secs(),
            ),
        ] {
            assert_eq!(
                ours.to_bits(),
                theirs.to_bits(),
                "{name} @ {ghz} GHz: {field} bit pattern drifted ({ours} vs {theirs})"
            );
        }
        assert_eq!(summary.gc_count, stored.gc_count, "{name} @ {ghz} GHz gc_count");
        assert_eq!(summary.allocated, stored.allocated, "{name} @ {ghz} GHz allocated");
        assert_eq!(
            summary.trace.epochs.len(),
            stored.trace.epochs.len(),
            "{name} @ {ghz} GHz epoch count"
        );
    }
}
