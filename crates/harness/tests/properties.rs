//! Property tests over the simulation memo key — every input that can
//! change a run's result must change the key (injectivity over sampled
//! perturbations), and inputs that provably cannot change the result —
//! inert fault configurations — must collapse onto one key — and over
//! the resilience layer's retry/backoff schedule, which must be a pure
//! function of (policy, point identity, attempt).

use std::collections::HashSet;
use std::time::Duration;

use dvfs_trace::Freq;
use harness::{sim_key, RetryPolicy};
use proptest::prelude::*;
use simx::{FaultClass, FaultConfig, MachineConfig};

fn base_machine() -> MachineConfig {
    let mut mc = MachineConfig::haswell_quad();
    mc.initial_freq = Freq::from_ghz(1.0);
    mc
}

fn bench(name: &str) -> &'static dacapo_sim::Benchmark {
    dacapo_sim::benchmark(name).expect("known benchmark")
}

#[test]
fn key_is_injective_over_the_experiment_grid() {
    // The exact grid the experiments sweep: benchmark × frequency × seed
    // (× scale). Every cell must land on a distinct key.
    let mut seen = HashSet::new();
    let mut n = 0usize;
    for b in dacapo_sim::all_benchmarks() {
        for ghz in [1.0, 2.0, 3.0, 4.0] {
            for seed in 1..=4u64 {
                for scale in [0.02, 0.05, 1.0] {
                    let mut mc = MachineConfig::haswell_quad();
                    mc.initial_freq = Freq::from_ghz(ghz);
                    assert!(
                        seen.insert(sim_key(b, &mc, None, scale, seed).0),
                        "collision at {} {ghz} GHz seed {seed} scale {scale}",
                        b.name
                    );
                    n += 1;
                }
            }
        }
    }
    assert_eq!(seen.len(), n);
}

#[test]
fn key_distinguishes_every_machine_field_perturbation() {
    let b = bench("lusearch");
    let base = sim_key(b, &base_machine(), None, 0.05, 1).0;

    let perturbations: Vec<(&str, MachineConfig)> = vec![
        ("initial_freq", {
            let mut m = base_machine();
            m.initial_freq = Freq::from_mhz(1001);
            m
        }),
        ("cores", {
            let mut m = base_machine();
            m.cores -= 1;
            m
        }),
        ("l1d capacity", {
            let mut m = base_machine();
            m.l1d.capacity *= 2;
            m
        }),
        ("l2 latency", {
            let mut m = base_machine();
            m.l2.latency_cycles += 1;
            m
        }),
        ("l3 associativity", {
            let mut m = base_machine();
            m.l3.associativity *= 2;
            m
        }),
        ("dram banks", {
            let mut m = base_machine();
            m.dram.banks += 1;
            m
        }),
        ("store queue", {
            let mut m = base_machine();
            m.store_queue_entries += 1;
            m
        }),
    ];
    let mut keys = HashSet::new();
    keys.insert(base);
    for (what, m) in perturbations {
        assert!(
            keys.insert(sim_key(b, &m, None, 0.05, 1).0),
            "perturbing {what} did not change the key"
        );
    }
}

#[test]
fn inert_faults_collapse_and_active_faults_split() {
    let b = bench("sunflow");
    let mc = base_machine();
    let no_fault = sim_key(b, &mc, None, 0.05, 1).0;

    // Inert configs are documented bit-identical to running with no
    // injector at all, whatever their seed: one key for all of them.
    for seed in [0u64, 1, 7, u64::MAX] {
        let inert = FaultConfig::none(seed);
        assert_eq!(
            no_fault,
            sim_key(b, &mc, Some(&inert), 0.05, 1).0,
            "inert fault with seed {seed} must share the fault-free key"
        );
    }

    // A non-inert config must split by class, intensity, and seed.
    let mut keys = HashSet::new();
    keys.insert(no_fault);
    for class in FaultClass::ALL {
        for intensity in [0.1, 0.5] {
            for seed in [1u64, 2] {
                let fault = FaultConfig::single(class, intensity, seed);
                assert!(
                    keys.insert(sim_key(b, &mc, Some(&fault), 0.05, 1).0),
                    "active fault {class:?} intensity {intensity} seed {seed} collided"
                );
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Random (frequency, scale, seed) triples never collide with each
    /// other (distinct inputs) nor agree by accident: the key is a pure
    /// function of its inputs.
    #[test]
    fn sampled_points_hash_consistently(
        mhz in 500u32..5000,
        scale_milli in 1u32..2000,
        seed in 0u64..1_000_000,
    ) {
        let b = bench("xalan");
        let mut mc = MachineConfig::haswell_quad();
        mc.initial_freq = Freq::from_mhz(mhz);
        let scale = f64::from(scale_milli) / 1000.0;
        let k1 = sim_key(b, &mc, None, scale, seed).0;
        let k2 = sim_key(b, &mc, None, scale, seed).0;
        prop_assert_eq!(k1, k2, "key must be deterministic");

        // Nudging any one coordinate moves the key.
        let mut mc2 = mc.clone();
        mc2.initial_freq = Freq::from_mhz(mhz + 1);
        prop_assert!(sim_key(b, &mc2, None, scale, seed).0 != k1);
        prop_assert!(sim_key(b, &mc, None, scale + 1.0/1024.0, seed).0 != k1);
        prop_assert!(sim_key(b, &mc, None, scale, seed ^ 1).0 != k1);
        prop_assert!(sim_key(bench("pmd"), &mc, None, scale, seed).0 != k1);
    }

    /// The retry backoff schedule is deterministic for a fixed point
    /// identity (same seed → byte-identical delays on recomputation),
    /// never exceeds the configured ceiling, and never jitters below
    /// half the capped exponential step.
    #[test]
    fn backoff_schedule_is_deterministic_and_bounded(
        seed in 0u64..1_000_000_000,
        retries in 1u32..6,
        base_ms in 1u64..500,
        max_ms in 1u64..5_000,
    ) {
        let policy = RetryPolicy {
            retries,
            base_delay: Duration::from_millis(base_ms),
            max_delay: Duration::from_millis(max_ms),
        };
        let schedule: Vec<Duration> =
            (0..retries).map(|a| policy.backoff(seed, a)).collect();
        let again: Vec<Duration> =
            (0..retries).map(|a| policy.backoff(seed, a)).collect();
        prop_assert_eq!(&schedule, &again, "recomputed schedule must not drift");

        for (attempt, delay) in schedule.iter().enumerate() {
            let cap = policy
                .base_delay
                .saturating_mul(2u32.saturating_pow(attempt as u32))
                .min(policy.max_delay)
                .as_secs_f64();
            let d = delay.as_secs_f64();
            prop_assert!(
                d <= cap + 1e-9,
                "attempt {} delay {:?} above the {}s cap", attempt, delay, cap
            );
            prop_assert!(
                d >= 0.5 * cap - 1e-9,
                "attempt {} delay {:?} jittered below half the {}s cap",
                attempt, delay, cap
            );
        }
    }
}
