//! Integration suite for the structure-aware fuzzer.
//!
//! The fuzzer's promise is twofold: a clean simulator yields a clean
//! campaign, and a violating case — here provoked through the test-only
//! sabotage hook — is caught and shrunk to a minimal reproducer without
//! ever losing the violation. Both halves must be deterministic, so the
//! proptests re-run the pipeline and demand identical bytes.

use harness::fuzz;
use proptest::prelude::*;
use simx::Invariant;

/// A short clean campaign over the honest simulator finds nothing.
/// (CI runs the longer 25-case smoke; this keeps `cargo test` fast.)
#[test]
fn clean_campaign_reports_zero_violations() {
    let findings = fuzz::run_campaign(1, 6, true, None);
    assert_eq!(findings.len(), 6);
    for finding in &findings {
        assert!(
            finding.violation.is_none(),
            "case {} violated [{}]: {}",
            finding.index,
            finding.violation.as_ref().unwrap().invariant,
            finding.violation.as_ref().unwrap().detail,
        );
        assert!(finding.shrunk.is_none(), "nothing to shrink on a clean case");
    }
}

/// Sabotaging counter conservation makes every case fire, and shrinking
/// drives each reproducer into the cheap corner of the input grammar.
#[test]
fn sabotage_is_caught_on_every_case_and_shrunk_to_the_corner() {
    let sabotage = Some(Invariant::CounterConservation);
    let findings = fuzz::run_campaign(42, 3, true, sabotage);
    assert_eq!(findings.len(), 3);
    for finding in &findings {
        let violation = finding
            .violation
            .as_ref()
            .expect("sabotaged invariant must fire on healthy data");
        assert_eq!(violation.invariant, Invariant::CounterConservation.name());
        let minimal = finding.shrunk.as_ref().expect("shrinking was requested");
        // The transform menu can always reach these defaults while the
        // sabotage keeps firing, so the shrinker must land on them.
        assert_eq!(minimal.fault, None, "fault dropped");
        assert_eq!(minimal.scale_milli, 10, "scale minimized");
        assert_eq!(minimal.cores, 1, "cores minimized");
        assert_eq!(minimal.ladder_points, 2, "ladder minimized");
        // And the minimal case still violates the same invariant.
        let replay = fuzz::run_case(minimal, sabotage).expect("reproducer reproduces");
        assert_eq!(replay.invariant, violation.invariant);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Same campaign seed, same findings — byte for byte, shrunk
    /// reproducers included. This is the reproducibility contract the
    /// `fuzz` binary advertises.
    #[test]
    fn campaigns_are_deterministic(seed in 0u64..1_000_000) {
        let sabotage = Some(Invariant::CounterConservation);
        let first = fuzz::run_campaign(seed, 2, true, sabotage);
        let second = fuzz::run_campaign(seed, 2, true, sabotage);
        prop_assert_eq!(
            serde_json::to_string(&first).expect("findings serialize"),
            serde_json::to_string(&second).expect("findings serialize"),
            "campaign seed {} is not reproducible", seed
        );
    }

    /// Shrinking is deterministic and never loses the violation: the
    /// minimal case provokes the same invariant as the original.
    #[test]
    fn shrinking_is_deterministic_and_preserves_the_violation(seed in 0u64..1_000_000) {
        let sabotage = Some(Invariant::CounterConservation);
        let case = fuzz::generate(seed, 0);
        let violation = fuzz::run_case(&case, sabotage)
            .expect("sabotaged invariant fires on every case");
        let minimal = fuzz::shrink(&case, &violation, sabotage);
        prop_assert_eq!(
            &minimal,
            &fuzz::shrink(&case, &violation, sabotage),
            "shrinking case from seed {} twice diverged", seed
        );
        let replay = fuzz::run_case(&minimal, sabotage)
            .expect("shrinking must never lose the violation");
        prop_assert_eq!(replay.invariant, violation.invariant);
    }
}
