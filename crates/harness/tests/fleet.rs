//! Fleet acceptance tests: a seeded chaos fleet run is deterministic
//! (byte-identical across job counts and cache temperature), survives
//! injected crashes and partitions with zero lost points, keeps every
//! shard's checkpoint state independent, and — at zero chaos intensity —
//! reproduces the existing single-machine golden byte-for-byte.

use dvfs_trace::Freq;
use energyx::{DegradationConfig, DegradationLadder};
use harness::experiments::fleet::{self, machine_ladder, FleetConfig};
use harness::run::{ExecCtx, SimPoint, SweepPlan};
use harness::{sim_key, Journal, SimKey};
use proptest::prelude::*;
use simx::fleet::ChaosConfig;
use simx::{MachineConfig, ThermalConfig};

/// The golden grid's parameters (see `tests/golden.rs`).
const SCALE: f64 = 0.05;
const SEED: u64 = 1;

fn tiny_config(machines: usize, shards: usize, chaos: f64, chaos_seed: u64) -> FleetConfig {
    let mut config = FleetConfig::new(machines, shards, 40, 0.02, SEED);
    config.chaos = ChaosConfig::uniform(chaos, chaos_seed);
    // Two benchmarks keep each cold-cache characterization cheap while
    // still exercising heterogeneous machines (ladders rotate by id).
    config.benches = vec![
        dacapo_sim::benchmark("lusearch").expect("lusearch"),
        dacapo_sim::benchmark("sunflow").expect("sunflow"),
    ];
    config
}

fn report_json(ctx: &ExecCtx, config: &FleetConfig) -> String {
    let outcome = fleet::run_with(ctx, config).expect("fleet run");
    serde_json::to_string_pretty(&outcome.report).expect("serialize report")
}

#[test]
fn chaos_fleet_is_byte_identical_across_jobs_and_cache_temperature() {
    let config = tiny_config(6, 2, 0.6, 7);
    let reference = report_json(&ExecCtx::sequential(), &config);
    // More workers.
    assert_eq!(reference, report_json(&ExecCtx::new(4), &config));
    // Warm cache: a second run on the same context replays every
    // characterization point from memory.
    let ctx = ExecCtx::new(2);
    let cold = report_json(&ctx, &config);
    let warm = report_json(&ctx, &config);
    assert_eq!(reference, cold);
    assert_eq!(cold, warm);
}

#[test]
fn chaos_fleet_loses_no_points_and_reports_every_transition() {
    let config = tiny_config(6, 2, 0.8, 3);
    let outcome = fleet::run_with(&ExecCtx::new(2), &config).expect("fleet survives chaos");
    let report = &outcome.report;
    assert_eq!(report.machines.len(), 6, "every machine reports a row");
    assert!(report.summary.crash_events > 0, "chaos at 0.8 must crash");
    // Every round of every machine is accounted: up modes + down rounds.
    for row in &report.machines {
        let total =
            row.rounds_central + row.rounds_local + row.rounds_fallback + row.rounds_down;
        assert_eq!(total as usize, config.rounds, "machine {}", row.machine);
    }
    // Degradation shows up both as residency and as logged transitions.
    assert!(report.summary.degraded_machine_rounds > 0);
    assert!(
        report.machines.iter().any(|r| !r.transitions.is_empty()),
        "chaos must log degradation transitions"
    );
    // Crashed machines shed traffic (partial by design) but the fleet
    // still serves.
    assert!(report.summary.shed > 0.0);
    assert!(report.summary.served > 0.0);
}

#[test]
fn zero_chaos_fleet_of_one_matches_the_single_machine_golden() {
    let mut config = FleetConfig::new(1, 1, 20, SCALE, SEED);
    config.benches = vec![dacapo_sim::benchmark("lusearch").expect("lusearch")];
    let outcome = fleet::run_with(&ExecCtx::sequential(), &config).expect("fleet run");
    assert_eq!(outcome.charact.len(), 2, "lusearch at 1 and 4 GHz");
    for point in &outcome.charact {
        let path = format!("tests/goldens/{}_{:.0}ghz.json", point.bench, point.ghz);
        let golden = std::fs::read_to_string(&path)
            .unwrap_or_else(|e| panic!("golden {path}: {e}"));
        let actual =
            serde_json::to_string_pretty(&*point.summary).expect("serialize summary");
        assert_eq!(
            actual, golden,
            "fleet characterization diverged from {path}"
        );
    }
    // And with no chaos nothing degrades.
    let report = &outcome.report;
    assert_eq!(report.summary.crash_events, 0);
    assert_eq!(report.summary.degraded_machine_rounds, 0);
    assert!(report.machines[0].transitions.is_empty());
}

#[test]
fn shard_namespaces_keep_journal_entries_apart() {
    // The same physical point recorded under shard 0's namespace must
    // not satisfy shard 1's lookup — that is exactly the `--resume`
    // cross-shard replay bug.
    let mut mc = MachineConfig::haswell_quad();
    mc.initial_freq = Freq::from_ghz(1.0);
    let bench = dacapo_sim::benchmark("lusearch").expect("lusearch");
    let key = sim_key(bench, &mc, None, 0.02, SEED);
    assert_ne!(key.in_namespace("shard0"), key.in_namespace("shard1"));
    assert_ne!(key.in_namespace("shard0"), key);

    let dir = std::env::temp_dir().join(format!("depburst-fleet-ns-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("tmp dir");
    let path = dir.join("ns.jsonl");
    let _ = std::fs::remove_file(&path);

    let mut plan = SweepPlan::new();
    plan.push(SimPoint::new(bench, Freq::from_ghz(1.0), 0.02, SEED));
    let ctx = ExecCtx::sequential().with_journal(Journal::create_at(&path).expect("create"));
    ctx.execute_in(Some("shard0"), &plan).expect("shard0 run");

    let resumed = Journal::resume_at(&path).expect("resume");
    assert!(
        resumed.lookup(key.in_namespace("shard0")).is_some(),
        "shard0's own entry must replay"
    );
    assert!(
        resumed.lookup(key.in_namespace("shard1")).is_none(),
        "shard0's entry must not replay into shard1"
    );
    assert!(
        resumed.lookup(key).is_none(),
        "a namespaced record must not satisfy an un-namespaced lookup"
    );
    let _ = std::fs::remove_file(&path);
}

#[test]
fn interrupted_fleet_run_resumes_byte_identically() {
    let dir = std::env::temp_dir().join(format!("depburst-fleet-resume-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("tmp dir");
    let path = dir.join("fleet.jsonl");
    let _ = std::fs::remove_file(&path);

    let config = tiny_config(4, 2, 0.5, 9);
    let reference = report_json(&ExecCtx::new(2), &config);

    // "Interrupt": journal only shard 0's characterization, as if the
    // run died mid-sweep after one shard's points completed.
    {
        let bench_pool = &config.benches;
        let mut plan = SweepPlan::new();
        for m in [0usize, 1] {
            let bench = bench_pool[m % bench_pool.len()];
            for ghz in [1.0, 4.0] {
                plan.push(SimPoint::new(bench, Freq::from_ghz(ghz), config.scale, config.seed));
            }
        }
        let ctx = ExecCtx::sequential().with_journal(Journal::create_at(&path).expect("create"));
        ctx.execute_in(Some("shard0"), &plan).expect("partial run");
    }

    // Resume: a fresh context (cold cache) with the torn journal must
    // replay shard 0, re-simulate the rest, and produce the reference
    // bytes.
    let resumed_ctx =
        ExecCtx::new(2).with_journal(Journal::resume_at(&path).expect("resume"));
    let resumed = report_json(&resumed_ctx, &config);
    assert_eq!(reference, resumed, "resumed fleet diverged");
    let _ = std::fs::remove_file(&path);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Satellite: chosen frequencies stay on each machine's own V/f
    /// ladder in every degraded mode. The fleet run itself enforces this
    /// (an off-ladder round is a `LadderMembership` invariant error), so
    /// surviving arbitrary chaos proves it for central, local and
    /// fallback modes at once.
    #[test]
    fn frequencies_stay_on_ladder_under_arbitrary_chaos(
        intensity in 0.0f64..=1.0,
        chaos_seed in 0u64..1000,
        machines in 1usize..6,
    ) {
        let config = tiny_config(machines, 2, intensity, chaos_seed);
        let outcome = fleet::run_with(&ExecCtx::sequential(), &config)
            .expect("no invariant violation under chaos");
        for row in &outcome.report.machines {
            let ladder = machine_ladder(row.machine);
            prop_assert!(ladder.len() > 1);
        }
    }

    /// Satellite: failover/rejoin sequences are a pure function of
    /// (seed, chaos schedule) — two runs of the same config produce the
    /// same transitions on every machine, and a different chaos seed is
    /// allowed to (and at full intensity does) change them.
    #[test]
    fn failover_sequences_are_pure_functions_of_seed_and_schedule(
        intensity in 0.0f64..=1.0,
        chaos_seed in 0u64..1000,
    ) {
        let config = tiny_config(4, 2, intensity, chaos_seed);
        let a = fleet::run_with(&ExecCtx::sequential(), &config).expect("run a");
        let b = fleet::run_with(&ExecCtx::new(3), &config).expect("run b");
        for (ra, rb) in a.report.machines.iter().zip(&b.report.machines) {
            prop_assert_eq!(&ra.transitions, &rb.transitions);
        }
        prop_assert_eq!(
            serde_json::to_string(&a.report).expect("a"),
            serde_json::to_string(&b.report).expect("b")
        );
    }

    /// Satellite: the ladder's rejoin hysteresis stays monotone under
    /// arbitrary interleavings of chaos (partition, telemetry loss,
    /// crash-restart) and thermal-emergency rounds. Each command byte
    /// encodes one round's health triple (reachable / telemetry /
    /// thermal-ok) or a crash restart; the test replays the sequence
    /// against its own streak bookkeeping and requires every upward move
    /// to follow a full fully-healthy rejoin window — thermally pinned
    /// rounds must neither demote the ladder nor count toward rejoin.
    #[test]
    fn rejoin_hysteresis_is_monotone_under_interleaved_chaos_and_thermal(
        commands in proptest::collection::vec(0u8..=8, 1..200),
    ) {
        let config = DegradationConfig::default();
        let mut ladder = DegradationLadder::new(config);
        let mut healthy = 0u32;
        for (round, &cmd) in commands.iter().enumerate() {
            let round = round as u64;
            if cmd == 8 {
                ladder.force_fallback(round, "crash-restart");
                healthy = 0;
                continue;
            }
            let reachable = cmd & 1 != 0;
            let telemetry = cmd & 2 != 0;
            let thermal_ok = cmd & 4 != 0;
            let before = ladder.mode();
            let after = ladder.observe_health(round, reachable, telemetry, thermal_ok);
            if reachable && telemetry && thermal_ok {
                healthy += 1;
            } else {
                healthy = 0;
            }
            if after.rung() > before.rung() {
                // A promotion spent the whole hysteresis window, all of
                // it fully healthy — so never on a thermally pinned or
                // chaos-afflicted round.
                prop_assert!(reachable && telemetry && thermal_ok);
                prop_assert!(healthy >= config.rejoin_threshold);
                prop_assert_eq!(after.rung(), before.rung() + 1, "one rung per window");
                healthy = 0;
            }
            // Thermal pinning alone never demotes: authority over a
            // throttled machine belongs to the throttle ladder, not the
            // degradation ladder.
            if reachable && telemetry && !thermal_ok {
                prop_assert!(after.rung() >= before.rung());
            }
        }
        prop_assert!(ladder.monotonicity_issue().is_none(),
            "{:?}", ladder.monotonicity_issue());
    }
}

#[test]
fn zero_thermal_fleet_is_byte_identical_to_the_legacy_config() {
    // Satellite regression pin: the thermal/hierarchy layer must be
    // invisible when disabled. A legacy config (all defaults) and one
    // that *explicitly* disables every extension must serialize
    // byte-identical reports — i.e. the disabled thermal model draws no
    // randomness and the extended summary fields stay absent — so the
    // committed pre-thermal results/fleet.json remains reproducible.
    let legacy = tiny_config(4, 2, 0.6, 7);
    let mut explicit = tiny_config(4, 2, 0.6, 7);
    explicit.thermal = ThermalConfig::disabled();
    explicit.regions = 1;
    explicit.hierarchy = false;
    assert!(!legacy.extended(), "legacy config must not opt in");
    assert!(!explicit.extended(), "explicitly-disabled config must not opt in");

    let ctx = ExecCtx::sequential();
    let a = report_json(&ctx, &legacy);
    let b = report_json(&ctx, &explicit);
    assert_eq!(a, b, "disabled thermal layer perturbed the legacy report");
    // The extended keys must not leak into legacy serializations: their
    // absence is what keeps old reports byte-stable.
    for key in [
        "strict_slo_attainment",
        "peak_temp_mc",
        "emergency_throttles",
        "thermal_shutdowns",
        "black_starts",
        "breaker_trips",
        "brownout_rounds",
    ] {
        assert!(!a.contains(key), "legacy report leaked extended key {key}");
    }
}

#[test]
fn namespaced_keys_are_stable_across_processes() {
    // The namespace derivation must be content-addressed (StableHasher),
    // not process-local: pin one value forever.
    let key = SimKey(0x0123_4567_89ab_cdef_fedc_ba98_7654_3210);
    let ns = key.in_namespace("shard7");
    assert_eq!(ns, key.in_namespace("shard7"));
    assert_ne!(ns, key.in_namespace("shard8"));
}
