//! Differential determinism test: the parallel runner must be
//! bit-for-bit indistinguishable from the historical sequential harness,
//! and a warm cache — in-memory or replayed from disk by a fresh
//! context — must not change a single byte of output.
//!
//! One test shares the simulated points across all four comparisons so
//! the suite simulates each (benchmark, frequency) point at most twice.

use harness::experiments::fig1;
use harness::{ExecCtx, SimCache};

const SCALE: f64 = 0.01;
const SEEDS: [u64; 1] = [1];

fn fig1_report(ctx: &ExecCtx) -> String {
    let (rows, cells) = fig1::run_with(ctx, SCALE, &SEEDS).expect("fig1 succeeds");
    let mut out = fig1::render(&rows);
    out.push('\n');
    out.push_str(&serde_json::to_string_pretty(&rows).expect("rows serialize"));
    out.push('\n');
    out.push_str(&serde_json::to_string_pretty(&cells).expect("cells serialize"));
    out
}

#[test]
fn fig1_is_byte_identical_across_jobs_and_cache_states() {
    let dir = std::env::temp_dir().join(format!("depburst-diff-cache-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);

    // jobs=1, in-memory cache: the historical sequential harness.
    let sequential = fig1_report(&ExecCtx::sequential());

    // jobs=4, persisting every computed point to `dir`.
    let par_ctx = ExecCtx {
        jobs: 4,
        cache: SimCache::persistent(&dir),
    };
    let parallel = fig1_report(&par_ctx);
    assert_eq!(
        sequential, parallel,
        "jobs=4 produced different bytes than jobs=1"
    );
    let cold = par_ctx.cache.stats();
    assert!(cold.misses > 0, "cold pass must simulate");

    // Same context again: every point now served from the in-process memo.
    let warm = fig1_report(&par_ctx);
    let stats = par_ctx.cache.stats();
    assert_eq!(parallel, warm, "warm cache changed the report bytes");
    assert_eq!(
        stats.misses, cold.misses,
        "warm pass must not simulate anything new"
    );
    assert!(
        stats.memory_hits > cold.memory_hits,
        "warm pass must be served from the memo"
    );

    // A brand-new context sharing only the directory must replay the
    // whole figure from disk, byte-identical, without simulating.
    let replay_ctx = ExecCtx {
        jobs: 2,
        cache: SimCache::persistent(&dir),
    };
    let replayed = fig1_report(&replay_ctx);
    let replay_stats = replay_ctx.cache.stats();
    assert_eq!(
        sequential, replayed,
        "disk-replayed report differs from the computed one"
    );
    assert_eq!(
        replay_stats.misses, 0,
        "persisted envelopes must satisfy every point"
    );
    assert!(replay_stats.disk_hits > 0);

    let _ = std::fs::remove_dir_all(&dir);
}
