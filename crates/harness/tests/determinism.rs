//! Differential determinism test: the parallel runner must be
//! bit-for-bit indistinguishable from the historical sequential harness,
//! and a warm cache — in-memory or replayed from disk by a fresh
//! context — must not change a single byte of output.
//!
//! One test shares the simulated points across all four comparisons so
//! the suite simulates each (benchmark, frequency) point at most twice.
//! A second test interrupts a checkpoint journal mid-write (truncating
//! it to a torn final line, as a crash or SIGINT would) and proves the
//! resumed run is byte-identical too.

use harness::experiments::fig1;
use harness::{ExecCtx, Journal, SimCache};

const SCALE: f64 = 0.01;
const SEEDS: [u64; 1] = [1];

fn fig1_report(ctx: &ExecCtx) -> String {
    let (rows, cells) = fig1::run_with(ctx, SCALE, &SEEDS).expect("fig1 succeeds");
    let mut out = fig1::render(&rows);
    out.push('\n');
    out.push_str(&serde_json::to_string_pretty(&rows).expect("rows serialize"));
    out.push('\n');
    out.push_str(&serde_json::to_string_pretty(&cells).expect("cells serialize"));
    out
}

#[test]
fn fig1_is_byte_identical_across_jobs_and_cache_states() {
    let dir = std::env::temp_dir().join(format!("depburst-diff-cache-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);

    // jobs=1, in-memory cache: the historical sequential harness.
    let sequential = fig1_report(&ExecCtx::sequential());

    // jobs=4, persisting every computed point to `dir`.
    let par_ctx = ExecCtx::new(4).with_cache(SimCache::persistent(&dir));
    let parallel = fig1_report(&par_ctx);
    assert_eq!(
        sequential, parallel,
        "jobs=4 produced different bytes than jobs=1"
    );
    let cold = par_ctx.cache.stats();
    assert!(cold.misses > 0, "cold pass must simulate");

    // Same context again: every point now served from the in-process memo.
    let warm = fig1_report(&par_ctx);
    let stats = par_ctx.cache.stats();
    assert_eq!(parallel, warm, "warm cache changed the report bytes");
    assert_eq!(
        stats.misses, cold.misses,
        "warm pass must not simulate anything new"
    );
    assert!(
        stats.memory_hits > cold.memory_hits,
        "warm pass must be served from the memo"
    );

    // A brand-new context sharing only the directory must replay the
    // whole figure from disk, byte-identical, without simulating.
    let replay_ctx = ExecCtx::new(2).with_cache(SimCache::persistent(&dir));
    let replayed = fig1_report(&replay_ctx);
    let replay_stats = replay_ctx.cache.stats();
    assert_eq!(
        sequential, replayed,
        "disk-replayed report differs from the computed one"
    );
    assert_eq!(
        replay_stats.misses, 0,
        "persisted envelopes must satisfy every point"
    );
    assert!(replay_stats.disk_hits > 0);

    let _ = std::fs::remove_dir_all(&dir);
}

/// The sampled tier must satisfy the same determinism contract as exact
/// execution: pool width, cache temperature, and disk replay may not
/// change a byte. Sampled points decompose into probe/measure sub-runs
/// plus an extrapolation — every stage must be pure for this to hold.
#[test]
fn sampled_runs_are_byte_identical_across_jobs_and_cache_states() {
    let dir = std::env::temp_dir().join(format!("depburst-sampled-cache-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let cfg = Some(simx::SamplingConfig::default());

    // jobs=1, in-memory cache.
    let sequential = fig1_report(&ExecCtx::sequential().with_sampling(cfg));

    // jobs=4, persisting both the sampled envelopes and their exact
    // sub-runs to `dir`.
    let par_ctx = ExecCtx::new(4)
        .with_cache(SimCache::persistent(&dir))
        .with_sampling(cfg);
    let parallel = fig1_report(&par_ctx);
    assert_eq!(
        sequential, parallel,
        "sampled jobs=4 produced different bytes than jobs=1"
    );
    let cold = par_ctx.cache.stats();
    assert!(cold.misses > 0, "cold sampled pass must simulate");

    // Warm memo: nothing re-simulates, bytes unchanged.
    let warm = fig1_report(&par_ctx);
    let stats = par_ctx.cache.stats();
    assert_eq!(parallel, warm, "warm cache changed the sampled bytes");
    assert_eq!(stats.misses, cold.misses, "warm sampled pass must not simulate");

    // A fresh context replays the sampled envelopes from disk without
    // re-running the extrapolator or any sub-run.
    let replay_ctx = ExecCtx::new(2)
        .with_cache(SimCache::persistent(&dir))
        .with_sampling(cfg);
    let replayed = fig1_report(&replay_ctx);
    assert_eq!(sequential, replayed, "disk-replayed sampled report differs");
    assert_eq!(
        replay_ctx.cache.stats().misses,
        0,
        "persisted sampled envelopes must satisfy every point"
    );

    let _ = std::fs::remove_dir_all(&dir);
}

/// A sampled sweep interrupted mid-journal must resume byte-identically,
/// exactly like the exact tier: surviving sampled envelopes replay, the
/// lost tail re-runs its probe/measure sub-runs and re-extrapolates.
#[test]
fn sampled_interrupted_journal_resumes_byte_identical() {
    let dir = std::env::temp_dir().join(format!("depburst-sampled-resume-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let journal_path = dir.join("run.jsonl");
    let cfg = Some(simx::SamplingConfig::default());

    let baseline = fig1_report(&ExecCtx::sequential().with_sampling(cfg));

    {
        let ctx = ExecCtx::new(4)
            .with_journal(Journal::create_at(&journal_path).expect("create journal"))
            .with_sampling(cfg);
        let full = fig1_report(&ctx);
        assert_eq!(baseline, full, "journaled sampled run changed the bytes");
        assert!(
            ctx.journal().expect("journal attached").appends() > 2,
            "journal must record the sampled points"
        );
    }

    // Tear the journal mid-line, as a crash would.
    let text = std::fs::read_to_string(&journal_path).expect("journal readable");
    let lines: Vec<&str> = text.lines().collect();
    assert!(lines.len() >= 4, "need enough records to interrupt");
    let half = lines.len() / 2;
    let mut torn = lines[..half].join("\n");
    torn.push('\n');
    torn.push_str(&lines[half][..lines[half].len() / 2]);
    std::fs::write(&journal_path, &torn).expect("truncate journal");

    let ctx = ExecCtx::new(2)
        .with_journal(Journal::resume_at(&journal_path).expect("resume journal"))
        .with_sampling(cfg);
    let resumed = fig1_report(&ctx);
    assert_eq!(baseline, resumed, "resumed sampled run differs from baseline");
    let journal = ctx.journal().expect("journal attached");
    assert!(journal.replays() > 0, "resume must replay sampled records");
    assert_eq!(journal.loaded(), half, "torn final line must be dropped");
    assert!(
        ctx.cache.stats().misses > 0,
        "lost sampled tail must be recomputed"
    );

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn invariant_monitor_mode_never_changes_the_physics() {
    // The monitor observes; it must not perturb. A run's summary —
    // every f64 bit included — must be byte-identical whether the
    // monitor is off (the pre-monitor harness), cheap, or full. The
    // goldens suite separately pins the off-mode bytes to the
    // checked-in references, so transitivity pins all three modes to
    // the pre-monitor behaviour.
    let bench = dacapo_sim::benchmark("lusearch").expect("exists");
    let config = harness::RunConfig {
        freq: dvfs_trace::Freq::from_ghz(2.0),
        scale: SCALE,
        seed: 1,
    };
    let summary_at = |mode: simx::InvariantMode| {
        let result = harness::try_run_benchmark_monitored(bench, config, mode)
            .unwrap_or_else(|e| panic!("clean run under {mode} failed: {e}"));
        serde_json::to_string_pretty(&result.summarize()).expect("summary serializes")
    };
    let off = summary_at(simx::InvariantMode::Off);
    assert_eq!(off, summary_at(simx::InvariantMode::Cheap), "cheap != off");
    assert_eq!(off, summary_at(simx::InvariantMode::Full), "full != off");
}

#[test]
fn interrupted_journal_resumes_byte_identical() {
    let dir = std::env::temp_dir().join(format!("depburst-resume-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let journal_path = dir.join("run.jsonl");

    // The uninterrupted reference run (no journal, no cache dir).
    let baseline = fig1_report(&ExecCtx::sequential());

    // A full journaled run: every cacheable point lands in the journal.
    let full_misses = {
        let ctx = ExecCtx::new(4)
            .with_journal(Journal::create_at(&journal_path).expect("create journal"));
        let full = fig1_report(&ctx);
        assert_eq!(baseline, full, "journaled run changed the report bytes");
        assert!(
            ctx.journal().expect("journal attached").appends() > 2,
            "journal must record the sweep's points"
        );
        ctx.cache.stats().misses
    };

    // Interrupt: keep the first half of the journal and tear the next
    // line in half with no trailing newline — exactly what a crash
    // mid-append leaves behind.
    let text = std::fs::read_to_string(&journal_path).expect("journal readable");
    let lines: Vec<&str> = text.lines().collect();
    assert!(lines.len() >= 4, "need enough records to interrupt");
    let half = lines.len() / 2;
    let mut torn = lines[..half].join("\n");
    torn.push('\n');
    torn.push_str(&lines[half][..lines[half].len() / 2]);
    std::fs::write(&journal_path, &torn).expect("truncate journal");

    // Resume: the surviving records replay (zero cache misses for them),
    // the lost tail recomputes, and the bytes match exactly.
    let resumed_misses = {
        let ctx = ExecCtx::new(2)
            .with_journal(Journal::resume_at(&journal_path).expect("resume journal"));
        let resumed = fig1_report(&ctx);
        assert_eq!(baseline, resumed, "resumed run differs from baseline");
        let journal = ctx.journal().expect("journal attached");
        assert!(journal.replays() > 0, "resume must replay journal records");
        assert_eq!(journal.loaded(), half, "torn final line must be dropped");
        ctx.cache.stats().misses
    };
    assert!(resumed_misses > 0, "lost tail must be recomputed");
    assert!(
        resumed_misses < full_misses,
        "replayed records must not be recomputed ({resumed_misses} vs {full_misses})"
    );

    // The resumed run healed the torn tail and re-appended the lost
    // records, so a third pass replays everything: zero simulations.
    let ctx = ExecCtx::new(2)
        .with_journal(Journal::resume_at(&journal_path).expect("resume healed journal"));
    let third = fig1_report(&ctx);
    assert_eq!(baseline, third, "healed-journal run differs from baseline");
    assert_eq!(
        ctx.cache.stats().misses,
        0,
        "a healed journal must satisfy every cacheable point"
    );

    let _ = std::fs::remove_dir_all(&dir);
}
