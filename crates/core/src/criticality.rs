//! Criticality stacks: a per-thread decomposition of execution time.
//!
//! Du Bois et al. \[13\] (cited in the paper's related work, §VII-B)
//! identify critical threads by monitoring synchronization behaviour.
//! Our synchronization epochs make the same analysis direct: during an
//! epoch with `n` active threads, each active thread accounts for `1/n`
//! of the epoch's wall time; time with no active thread is charged to an
//! idle bucket. A thread with a large share is one the application was
//! most often *waiting on* — the natural acceleration target, and a good
//! diagnostic companion to the DEP predictor (whose accuracy hinges on
//! identifying exactly these threads).

use std::collections::BTreeMap;

use dvfs_trace::{ExecutionTrace, ThreadId, TimeDelta};

/// A per-thread criticality decomposition of a trace.
#[derive(Debug, Clone, PartialEq)]
pub struct CriticalityStack {
    /// Each thread's share of wall-clock time (seconds), following the
    /// equal-share rule: an epoch's duration divides evenly among its
    /// active threads.
    pub shares: BTreeMap<ThreadId, TimeDelta>,
    /// Wall time during which no thread was active.
    pub idle: TimeDelta,
    /// The trace's total wall time.
    pub total: TimeDelta,
}

impl CriticalityStack {
    /// Computes the stack for a trace.
    #[must_use]
    pub fn compute(trace: &ExecutionTrace) -> Self {
        let mut shares: BTreeMap<ThreadId, TimeDelta> = BTreeMap::new();
        let mut idle = TimeDelta::ZERO;
        for epoch in &trace.epochs {
            let n = epoch.threads.len();
            if n == 0 {
                idle += epoch.duration;
                continue;
            }
            let share = epoch.duration / n as f64;
            for slice in &epoch.threads {
                *shares.entry(slice.thread).or_insert(TimeDelta::ZERO) += share;
            }
        }
        CriticalityStack {
            shares,
            idle,
            total: trace.total,
        }
    }

    /// A thread's share as a fraction of total wall time.
    #[must_use]
    pub fn fraction(&self, thread: ThreadId) -> f64 {
        let total = self.total.as_secs();
        if total <= 0.0 {
            return 0.0;
        }
        self.shares
            .get(&thread)
            .map(|s| s.as_secs() / total)
            .unwrap_or(0.0)
    }

    /// The most critical thread (largest share), if any thread ran.
    #[must_use]
    pub fn most_critical(&self) -> Option<ThreadId> {
        self.shares
            .iter()
            .max_by(|a, b| {
                a.1.as_secs()
                    .partial_cmp(&b.1.as_secs())
                    .expect("finite times")
            })
            .map(|(&t, _)| t)
    }

    /// Shares sorted descending, as `(thread, fraction)` pairs.
    #[must_use]
    pub fn ranked(&self) -> Vec<(ThreadId, f64)> {
        let mut v: Vec<(ThreadId, f64)> = self
            .shares
            .keys()
            .map(|&t| (t, self.fraction(t)))
            .collect();
        v.sort_by(|a, b| b.1.partial_cmp(&a.1).expect("finite fractions"));
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dvfs_trace::{
        DvfsCounters, EpochEnd, EpochRecord, Freq, ThreadSlice, Time,
    };

    fn slice(id: u32, active: f64) -> ThreadSlice {
        ThreadSlice {
            thread: ThreadId(id),
            counters: DvfsCounters {
                active: TimeDelta::from_secs(active),
                ..DvfsCounters::zero()
            },
        }
    }

    fn trace() -> ExecutionTrace {
        ExecutionTrace {
            base: Freq::from_ghz(1.0),
            start: Time::ZERO,
            total: TimeDelta::from_secs(1.0),
            epochs: vec![
                // Both threads active for 0.6 s: 0.3 each.
                EpochRecord {
                    start: Time::ZERO,
                    duration: TimeDelta::from_secs(0.6),
                    threads: vec![slice(0, 0.6), slice(1, 0.6)],
                    end: EpochEnd::Stall(ThreadId(1)),
                },
                // Thread 0 alone for 0.3 s.
                EpochRecord {
                    start: Time::from_secs(0.6),
                    duration: TimeDelta::from_secs(0.3),
                    threads: vec![slice(0, 0.3)],
                    end: EpochEnd::Wake(ThreadId(1)),
                },
                // Nobody for 0.1 s (timer wait).
                EpochRecord {
                    start: Time::from_secs(0.9),
                    duration: TimeDelta::from_secs(0.1),
                    threads: vec![],
                    end: EpochEnd::TraceEnd,
                },
            ],
            markers: vec![],
            threads: vec![],
        }
    }

    #[test]
    fn equal_share_decomposition() {
        let stack = CriticalityStack::compute(&trace());
        assert!((stack.fraction(ThreadId(0)) - 0.6).abs() < 1e-12);
        assert!((stack.fraction(ThreadId(1)) - 0.3).abs() < 1e-12);
        assert!((stack.idle.as_secs() - 0.1).abs() < 1e-12);
        // Shares + idle tile the run.
        let sum: f64 = stack.shares.values().map(|s| s.as_secs()).sum();
        assert!((sum + stack.idle.as_secs() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn ranking_and_most_critical() {
        let stack = CriticalityStack::compute(&trace());
        assert_eq!(stack.most_critical(), Some(ThreadId(0)));
        let ranked = stack.ranked();
        assert_eq!(ranked[0].0, ThreadId(0));
        assert!(ranked[0].1 > ranked[1].1);
    }

    #[test]
    fn empty_trace_is_all_idle() {
        let t = ExecutionTrace {
            base: Freq::from_ghz(1.0),
            start: Time::ZERO,
            total: TimeDelta::ZERO,
            epochs: vec![],
            markers: vec![],
            threads: vec![],
        };
        let stack = CriticalityStack::compute(&t);
        assert!(stack.shares.is_empty());
        assert_eq!(stack.most_critical(), None);
        assert_eq!(stack.fraction(ThreadId(0)), 0.0);
    }
}
