//! `depburst` — DVFS performance predictors for managed multithreaded
//! applications.
//!
//! This crate implements the contribution of *"DVFS Performance Prediction
//! for Managed Multithreaded Applications"* (Akram, Sartor, Eeckhout —
//! ISPASS 2016) together with every baseline the paper compares against:
//!
//! | Predictor | Paper section | Type |
//! |---|---|---|
//! | [`MCrit`] | §II-C | naive multithreaded extension: per-thread CRIT, max over threads |
//! | [`Coop`] | §II-C | M+CRIT applied per application/collector phase |
//! | [`Dep`] | §III | synchronization-epoch decomposition with critical-thread prediction |
//! | `+BURST` | §III-D | store-queue-full time added to each thread's non-scaling component |
//!
//! Every predictor consumes a [`dvfs_trace::ExecutionTrace`] measured at a
//! base frequency and predicts the wall-clock duration of the same work at
//! a target frequency. The per-thread scaling/non-scaling split can use any
//! of the three published single-thread models ([`NonScalingModel`]:
//! stall time, leading loads, or CRIT — the paper uses CRIT).
//!
//! # Quick start
//!
//! ```
//! use depburst::{Dep, DvfsPredictor};
//! use dvfs_trace::{ExecutionTrace, Freq, TimeDelta, Time};
//!
//! let trace = ExecutionTrace {
//!     base: Freq::from_ghz(1.0),
//!     start: Time::ZERO,
//!     total: TimeDelta::from_millis(10.0),
//!     epochs: vec![],
//!     markers: vec![],
//!     threads: vec![],
//! };
//! let predictor = Dep::dep_burst(); // DEP+BURST, across-epoch CTP
//! let at_4ghz = predictor.predict(&trace, Freq::from_ghz(4.0));
//! assert_eq!(at_4ghz, TimeDelta::ZERO); // empty trace: nothing to predict
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod coop;
mod criticality;
mod dep;
mod mcrit;
mod metrics;
mod nonscaling;
mod predictor;
mod regression;

pub use coop::Coop;
pub use criticality::CriticalityStack;
pub use dep::{CtpMode, Dep};
pub use mcrit::MCrit;
pub use metrics::{mean_absolute_error, relative_error, ErrorStats};
pub use nonscaling::NonScalingModel;
pub use predictor::{DvfsPredictor, MAX_PLAUSIBLE_SLOWDOWN};
pub use regression::{RegressionError, RegressionPredictor, RegressionTrainer};

/// The full predictor roster evaluated in the paper's Figure 3: M+CRIT,
/// COOP and DEP, each with and without BURST (all using CRIT as the
/// per-thread model, as the paper does).
#[must_use]
pub fn paper_roster() -> Vec<Box<dyn DvfsPredictor>> {
    vec![
        Box::new(MCrit::new(NonScalingModel::Crit, false)),
        Box::new(MCrit::new(NonScalingModel::Crit, true)),
        Box::new(Coop::new(NonScalingModel::Crit, false)),
        Box::new(Coop::new(NonScalingModel::Crit, true)),
        Box::new(Dep::new(NonScalingModel::Crit, false, CtpMode::AcrossEpoch)),
        Box::new(Dep::new(NonScalingModel::Crit, true, CtpMode::AcrossEpoch)),
    ]
}
