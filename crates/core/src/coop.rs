//! COOP: phase-cooperative prediction (paper §II-C).
//!
//! COOP intercepts the JVM's collector signals to split the run into
//! application phases and stop-the-world collector phases, applies M+CRIT
//! within each phase, and sums the per-phase predictions. It fixes the
//! coarsest flaw of M+CRIT (application threads "sleeping" through a GC
//! pause being treated as scalable work) but remains blind to fine-grained
//! synchronization inside each phase.

use dvfs_trace::{ExecutionTrace, Freq, TimeDelta};

use crate::{DvfsPredictor, NonScalingModel};

/// The COOP predictor (optionally with BURST).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Coop {
    model: NonScalingModel,
    burst: bool,
}

impl Coop {
    /// Creates the predictor.
    #[must_use]
    pub fn new(model: NonScalingModel, burst: bool) -> Self {
        Coop { model, burst }
    }

    /// The paper's plain COOP (CRIT per thread).
    #[must_use]
    pub fn plain() -> Self {
        Coop::new(NonScalingModel::Crit, false)
    }

    /// COOP with store-burst modelling (COOP+BURST).
    #[must_use]
    pub fn with_burst() -> Self {
        Coop::new(NonScalingModel::Crit, true)
    }
}

impl DvfsPredictor for Coop {
    fn predict(&self, trace: &ExecutionTrace, target: Freq) -> TimeDelta {
        let ratio = trace.base.scaling_ratio_to(target);
        let mut total = TimeDelta::ZERO;
        for window in trace.phase_windows() {
            let counters = trace.totals_in_window(window.start, window.end);
            // COOP's phase split exists precisely to attribute each phase
            // to the threads that execute in it: the phase's critical
            // thread is chosen among threads that were substantially
            // active (application threads in application phases, collector
            // threads in collector phases). Mostly-dormant threads fall
            // back to the naive all-threads pass if nobody qualifies.
            let mut phase_best = TimeDelta::ZERO;
            let mut any_active = false;
            for pass in 0..2 {
                for info in &trace.threads {
                    let presence = info.presence_in(window.start, window.end);
                    if presence == TimeDelta::ZERO {
                        continue;
                    }
                    let active = counters
                        .get(&info.id)
                        .map(|c| c.active)
                        .unwrap_or(TimeDelta::ZERO);
                    let qualifies = active.as_secs() >= 0.3 * presence.as_secs();
                    if pass == 0 && !qualifies {
                        continue;
                    }
                    any_active |= qualifies;
                    let ns = counters
                        .get(&info.id)
                        .map(|c| self.model.non_scaling(c, self.burst))
                        .unwrap_or(TimeDelta::ZERO)
                        .min(presence);
                    let predicted = (presence - ns) * ratio + ns;
                    phase_best = phase_best.max(predicted);
                }
                if any_active {
                    break;
                }
            }
            total += phase_best;
        }
        total
    }

    fn name(&self) -> String {
        let mut n = "COOP".to_owned();
        if self.burst {
            n.push_str("+BURST");
        }
        n
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dvfs_trace::{
        DvfsCounters, EpochEnd, EpochRecord, PhaseKind, PhaseMarker, ThreadId, ThreadInfo,
        ThreadRole, ThreadSlice, Time,
    };

    /// An app phase (0–0.6 s, app thread doing memory-bound work, GC
    /// worker asleep) followed by a GC phase (0.6–1.0 s, GC worker doing
    /// non-scaling memory work, app thread suspended).
    fn phased_trace() -> ExecutionTrace {
        let t = Time::from_secs;
        let memory = |secs: f64| DvfsCounters {
            active: TimeDelta::from_secs(secs),
            crit: TimeDelta::from_secs(secs * 0.9),
            ..DvfsCounters::zero()
        };
        ExecutionTrace {
            base: Freq::from_ghz(1.0),
            start: t(0.0),
            total: TimeDelta::from_secs(1.0),
            epochs: vec![
                EpochRecord {
                    start: t(0.0),
                    duration: TimeDelta::from_secs(0.6),
                    threads: vec![ThreadSlice {
                        thread: ThreadId(0),
                        counters: memory(0.6),
                    }],
                    end: EpochEnd::Stall(ThreadId(0)),
                },
                EpochRecord {
                    start: t(0.6),
                    duration: TimeDelta::from_secs(0.4),
                    threads: vec![ThreadSlice {
                        thread: ThreadId(1),
                        counters: memory(0.4),
                    }],
                    end: EpochEnd::TraceEnd,
                },
            ],
            markers: vec![
                PhaseMarker::new(t(0.6), PhaseKind::GcStart),
                PhaseMarker::new(t(1.0), PhaseKind::GcEnd),
            ],
            threads: vec![
                ThreadInfo {
                    id: ThreadId(0),
                    role: ThreadRole::Application,
                    name: "app".into(),
                    spawn: t(0.0),
                    exit: None,
                },
                ThreadInfo {
                    id: ThreadId(1),
                    role: ThreadRole::GcWorker,
                    name: "gc".into(),
                    spawn: t(0.0),
                    exit: None,
                },
            ],
        }
    }

    #[test]
    fn identity_prediction_reproduces_total() {
        let trace = phased_trace();
        let id = Coop::plain().predict(&trace, Freq::from_ghz(1.0));
        assert!((id.as_secs() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn coop_beats_mcrit_on_phased_runs() {
        let trace = phased_trace();
        let target = Freq::from_ghz(4.0);
        // Truth per phase: app phase 0.6*0.9 + 0.6*0.1/4 = 0.555; GC phase
        // 0.4*0.9 + 0.4*0.1/4 = 0.37. Total = 0.925.
        let truth = 0.555 + 0.37;
        let coop = Coop::plain().predict(&trace, target).as_secs();
        let mcrit = crate::MCrit::plain().predict(&trace, target).as_secs();
        assert!(
            (coop - truth).abs() < 1e-9,
            "coop {coop} vs truth {truth}"
        );
        // M+CRIT sees each thread spanning the whole second, treats the
        // sleep through the other phase as scaling work, and
        // underestimates: t0 -> (1-0.54)/4+0.54 = 0.655.
        assert!((mcrit - 0.655).abs() < 1e-9, "mcrit {mcrit}");
        assert!((mcrit - truth).abs() > (coop - truth).abs());
    }

    #[test]
    fn unmarked_trace_degenerates_to_mcrit() {
        let mut trace = phased_trace();
        trace.markers.clear();
        let coop = Coop::plain().predict(&trace, Freq::from_ghz(2.0));
        let mcrit = crate::MCrit::plain().predict(&trace, Freq::from_ghz(2.0));
        assert_eq!(coop, mcrit);
    }

    #[test]
    fn name_reflects_burst() {
        assert_eq!(Coop::plain().name(), "COOP");
        assert_eq!(Coop::with_burst().name(), "COOP+BURST");
    }
}
