//! DEP: synchronization-epoch decomposition with critical-thread
//! prediction (paper §III), the core of DEP+BURST.
//!
//! Execution is decomposed into epochs at every futex transition. For each
//! epoch, every active thread's measured time is split into scaling and
//! non-scaling parts and re-timed at the target frequency; the epoch's
//! predicted duration is governed by its critical thread. Two
//! critical-thread-prediction (CTP) modes exist:
//!
//! * **per-epoch** (§III-C, Fig. 2c): the epoch lasts as long as its
//!   slowest thread — simple, no state across epochs, but over-counts when
//!   the critical thread changes between epochs;
//! * **across-epoch** (§III-C, Fig. 2d, Algorithm 1): a per-thread delta
//!   counter carries each thread's accumulated slack across epoch
//!   boundaries, so a thread that fell behind in one epoch is charged less
//!   in the next. The delta of a thread that *stalled* (went to sleep) is
//!   reset — its future progress is gated by its waker, not by its own
//!   slack.
//!
//! Two structural properties hold (and are property-tested): across-epoch
//! CTP never predicts more than per-epoch CTP (deltas are non-negative),
//! and per-epoch CTP is monotone in the target frequency. Across-epoch
//! CTP itself is *not* guaranteed monotone: which thread is critical in an
//! epoch can flip with the scaling ratio, changing how slack accumulates
//! downstream.

use std::collections::BTreeMap;

use dvfs_trace::{EpochRecord, ExecutionTrace, Freq, ThreadId, TimeDelta};

use crate::{DvfsPredictor, NonScalingModel};

/// Critical-thread prediction mode (paper §III-C, evaluated in Fig. 4).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CtpMode {
    /// Per-epoch CTP: each epoch independently lasts as long as its
    /// slowest thread.
    PerEpoch,
    /// Across-epoch CTP: Algorithm 1 with per-thread delta counters.
    AcrossEpoch,
}

/// The DEP predictor (optionally +BURST), the paper's contribution.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Dep {
    model: NonScalingModel,
    burst: bool,
    ctp: CtpMode,
}

impl Dep {
    /// Creates the predictor.
    #[must_use]
    pub fn new(model: NonScalingModel, burst: bool, ctp: CtpMode) -> Self {
        Dep { model, burst, ctp }
    }

    /// Plain DEP: CRIT per thread, across-epoch CTP, no store-burst
    /// modelling.
    #[must_use]
    pub fn plain() -> Self {
        Dep::new(NonScalingModel::Crit, false, CtpMode::AcrossEpoch)
    }

    /// The paper's headline configuration: DEP+BURST with across-epoch CTP.
    #[must_use]
    pub fn dep_burst() -> Self {
        Dep::new(NonScalingModel::Crit, true, CtpMode::AcrossEpoch)
    }

    /// DEP+BURST with per-epoch CTP (the Fig. 4 ablation).
    #[must_use]
    pub fn dep_burst_per_epoch() -> Self {
        Dep::new(NonScalingModel::Crit, true, CtpMode::PerEpoch)
    }

    /// Estimated duration of one epoch at the target frequency, updating
    /// the delta counters per Algorithm 1.
    fn epoch_estimate(
        &self,
        epoch: &EpochRecord,
        ratio: f64,
        deltas: &mut BTreeMap<ThreadId, TimeDelta>,
    ) -> TimeDelta {
        if epoch.threads.is_empty() {
            // No thread ran (everyone blocked on timers/IO): wall time that
            // does not scale with core frequency.
            return epoch.duration;
        }

        // Line 1-4: per-thread estimates a_t and delta-adjusted e_t.
        let mut estimates: Vec<(ThreadId, TimeDelta, TimeDelta)> =
            Vec::with_capacity(epoch.threads.len());
        for slice in &epoch.threads {
            let a_t = self.model.predict_active(&slice.counters, self.burst, ratio);
            let delta = deltas.get(&slice.thread).copied().unwrap_or(TimeDelta::ZERO);
            let e_t = a_t - delta;
            estimates.push((slice.thread, a_t, e_t));
        }

        // Line 5: the epoch lasts as long as its (slack-adjusted) critical
        // thread.
        let epoch_len = match self.ctp {
            CtpMode::PerEpoch => estimates
                .iter()
                .map(|&(_, a_t, _)| a_t)
                .fold(TimeDelta::ZERO, TimeDelta::max),
            CtpMode::AcrossEpoch => estimates
                .iter()
                .map(|&(_, _, e_t)| e_t)
                .fold(TimeDelta::ZERO, TimeDelta::max),
        };

        if self.ctp == CtpMode::AcrossEpoch {
            // Line 6-8: every active thread accrues the slack it gained on
            // the critical thread.
            for &(tid, a_t, _) in &estimates {
                let d = deltas.entry(tid).or_insert(TimeDelta::ZERO);
                *d = (epoch_len - a_t) + *d;
                // Slack is never negative: a thread cannot be ahead of an
                // epoch it participated in.
                *d = d.clamp_non_negative();
            }
            // Line 9: the stalled thread's future is gated by its waker.
            if let Some(stalled) = epoch.end.stalled_thread() {
                deltas.insert(stalled, TimeDelta::ZERO);
            }
        }

        epoch_len
    }
}

impl DvfsPredictor for Dep {
    fn predict(&self, trace: &ExecutionTrace, target: Freq) -> TimeDelta {
        let ratio = trace.base.scaling_ratio_to(target);
        let mut deltas: BTreeMap<ThreadId, TimeDelta> = BTreeMap::new();
        let mut total = TimeDelta::ZERO;
        for epoch in &trace.epochs {
            total += self.epoch_estimate(epoch, ratio, &mut deltas);
        }
        total
    }

    fn name(&self) -> String {
        let mut n = "DEP".to_owned();
        if self.burst {
            n.push_str("+BURST");
        }
        if self.ctp == CtpMode::PerEpoch {
            n.push_str(" (per-epoch CTP)");
        }
        n
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dvfs_trace::{
        DvfsCounters, EpochEnd, EpochRecord, ThreadInfo, ThreadRole, ThreadSlice, Time,
    };

    fn compute(secs: f64) -> DvfsCounters {
        DvfsCounters {
            active: TimeDelta::from_secs(secs),
            ..DvfsCounters::zero()
        }
    }

    fn memory(secs: f64, non_scaling_frac: f64) -> DvfsCounters {
        DvfsCounters {
            active: TimeDelta::from_secs(secs),
            crit: TimeDelta::from_secs(secs * non_scaling_frac),
            ..DvfsCounters::zero()
        }
    }

    fn info(id: u32, name: &str) -> ThreadInfo {
        ThreadInfo {
            id: ThreadId(id),
            role: ThreadRole::Application,
            name: name.into(),
            spawn: Time::ZERO,
            exit: None,
        }
    }

    fn trace_of(epochs: Vec<EpochRecord>, threads: Vec<ThreadInfo>) -> ExecutionTrace {
        let total = epochs.iter().map(|e| e.duration).sum();
        ExecutionTrace {
            base: Freq::from_ghz(1.0),
            start: Time::ZERO,
            total,
            epochs,
            markers: vec![],
            threads,
        }
    }

    fn epoch(
        start: f64,
        duration: f64,
        slices: Vec<(u32, DvfsCounters)>,
        end: EpochEnd,
    ) -> EpochRecord {
        EpochRecord {
            start: Time::from_secs(start),
            duration: TimeDelta::from_secs(duration),
            threads: slices
                .into_iter()
                .map(|(id, counters)| ThreadSlice {
                    thread: ThreadId(id),
                    counters,
                })
                .collect(),
            end,
        }
    }

    /// The paper's Fig. 2 scenario: t1 blocks on t0's critical section.
    /// Epochs: (a) both run, (b) only t0 runs (t1 asleep), (c) both run.
    fn fig2_trace() -> ExecutionTrace {
        trace_of(
            vec![
                epoch(
                    0.0,
                    0.3,
                    vec![(0, compute(0.3)), (1, compute(0.3))],
                    EpochEnd::Stall(ThreadId(1)),
                ),
                epoch(0.3, 0.2, vec![(0, compute(0.2))], EpochEnd::Wake(ThreadId(1))),
                epoch(
                    0.5,
                    0.5,
                    vec![(0, compute(0.5)), (1, compute(0.5))],
                    EpochEnd::TraceEnd,
                ),
            ],
            vec![info(0, "t0"), info(1, "t1")],
        )
    }

    #[test]
    fn identity_prediction_is_exact() {
        let trace = fig2_trace();
        for p in [Dep::plain(), Dep::dep_burst(), Dep::dep_burst_per_epoch()] {
            let id = p.predict(&trace, Freq::from_ghz(1.0));
            assert!(
                (id.as_secs() - 1.0).abs() < 1e-12,
                "{}: {id}",
                p.name()
            );
        }
    }

    #[test]
    fn dep_models_the_fig2_dependency() {
        // All compute: everything scales. At 2 GHz the run halves.
        let trace = fig2_trace();
        let pred = Dep::plain().predict(&trace, Freq::from_ghz(2.0));
        assert!((pred.as_secs() - 0.5).abs() < 1e-12);
        // M+CRIT also treats t1's 0.2 s sleep as scaling; here everything
        // scales, so the flaw happens to cancel. Give t0's critical section
        // non-scaling time instead: now the sleep matters.
        let mut trace = fig2_trace();
        trace.epochs[1].threads[0].counters = memory(0.2, 1.0);
        let dep = Dep::plain().predict(&trace, Freq::from_ghz(4.0)).as_secs();
        // Truth: 0.3/4 + 0.2 (non-scaling) + 0.5/4 = 0.4.
        assert!((dep - 0.4).abs() < 1e-12, "dep {dep}");
        // M+CRIT: t0 presence 1.0 with ns 0.2 -> 0.4; t1 presence 1.0 all
        // "scaling" -> 0.25. max = 0.4. Coincidence here; t1 heavier makes
        // it wrong:
        trace.epochs[2].threads[1].counters = memory(0.5, 0.8);
        let dep = Dep::plain().predict(&trace, Freq::from_ghz(4.0)).as_secs();
        // Epoch 3 critical thread is t1: 0.5*0.8 + 0.5*0.2/4 = 0.425.
        let truth = 0.3 / 4.0 + 0.2 + 0.425;
        assert!((dep - truth).abs() < 1e-12, "dep {dep} truth {truth}");
        let mcrit = crate::MCrit::plain()
            .predict(&trace, Freq::from_ghz(4.0))
            .as_secs();
        assert!(
            (mcrit - truth).abs() > (dep - truth).abs(),
            "DEP must beat M+CRIT: dep {dep}, mcrit {mcrit}, truth {truth}"
        );
    }

    /// A third thread's stall cuts an epoch while t0/t1 keep running.
    /// t0 is ahead in epoch 1, t1 in epoch 2; overall they tie. Per-epoch
    /// CTP double-counts; Algorithm 1's deltas cancel the slack exactly.
    #[test]
    fn across_epoch_ctp_corrects_critical_thread_swaps() {
        // Base at 1 GHz: epoch 1 is 0.4 s (t0 does 0.4 of non-scaling work,
        // t1 does 0.4 fully-scaling), epoch 2 is 0.4 s (roles reversed).
        // Watcher thread t2 sleeps at the cut.
        let trace = trace_of(
            vec![
                epoch(
                    0.0,
                    0.4,
                    vec![
                        (0, memory(0.4, 1.0)),
                        (1, compute(0.4)),
                        (2, compute(0.4)),
                    ],
                    EpochEnd::Stall(ThreadId(2)),
                ),
                epoch(
                    0.4,
                    0.4,
                    vec![(0, compute(0.4)), (1, memory(0.4, 1.0))],
                    EpochEnd::TraceEnd,
                ),
            ],
            vec![info(0, "t0"), info(1, "t1"), info(2, "t2")],
        );
        let target = Freq::from_ghz(4.0);
        // Truth: t0 needs 0.4 + 0.1 = 0.5; t1 needs 0.1 + 0.4 = 0.5. They
        // run concurrently without synchronizing with each other, so the
        // true end is at 0.5.
        let per_epoch = Dep::dep_burst_per_epoch()
            .predict(&trace, target)
            .as_secs();
        let across = Dep::dep_burst().predict(&trace, target).as_secs();
        // Per-epoch: max(0.4, 0.1) + max(0.1, 0.4) = 0.8 (double count).
        assert!((per_epoch - 0.8).abs() < 1e-12, "per-epoch {per_epoch}");
        // Across-epoch: epoch 1 = 0.4; t1 accrues delta 0.3; epoch 2:
        // e_t1 = 0.4 - 0.3 = 0.1, e_t0 = 0.1 -> epoch 2 = 0.1. Total 0.5.
        assert!((across - 0.5).abs() < 1e-12, "across {across}");
    }

    #[test]
    fn stalled_thread_delta_resets() {
        // t1 falls behind in epoch 1 (accrues slack), then *stalls*. Its
        // slack must not carry into the epoch after it wakes.
        let trace = trace_of(
            vec![
                epoch(
                    0.0,
                    0.4,
                    vec![(0, memory(0.4, 1.0)), (1, compute(0.4))],
                    EpochEnd::Stall(ThreadId(1)),
                ),
                epoch(0.4, 0.2, vec![(0, memory(0.2, 1.0))], EpochEnd::Wake(ThreadId(1))),
                epoch(
                    0.6,
                    0.4,
                    vec![(0, compute(0.4)), (1, memory(0.4, 1.0))],
                    EpochEnd::TraceEnd,
                ),
            ],
            vec![info(0, "t0"), info(1, "t1")],
        );
        let across = Dep::dep_burst()
            .predict(&trace, Freq::from_ghz(4.0))
            .as_secs();
        // Epoch 1: 0.4 (t0 non-scaling critical). t1 would accrue 0.3 of
        // slack, but it stalled: reset. Epoch 2: 0.2. Epoch 3: t1 critical
        // with full 0.4 (no leftover slack): total 0.4+0.2+0.4 = 1.0.
        assert!((across - 1.0).abs() < 1e-12, "got {across}");
    }

    #[test]
    fn empty_epochs_count_as_non_scaling_wall_time() {
        let trace = trace_of(
            vec![epoch(0.0, 0.25, vec![], EpochEnd::TraceEnd)],
            vec![info(0, "t0")],
        );
        let pred = Dep::plain().predict(&trace, Freq::from_ghz(4.0));
        assert!((pred.as_secs() - 0.25).abs() < 1e-12);
    }

    #[test]
    fn burst_improves_store_heavy_prediction() {
        // One thread, one epoch, half the time stalled on a full store
        // queue.
        let counters = DvfsCounters {
            active: TimeDelta::from_secs(1.0),
            sq_full: TimeDelta::from_secs(0.5),
            ..DvfsCounters::zero()
        };
        let trace = trace_of(
            vec![epoch(0.0, 1.0, vec![(0, counters)], EpochEnd::TraceEnd)],
            vec![info(0, "t0")],
        );
        let target = Freq::from_ghz(4.0);
        let plain = Dep::plain().predict(&trace, target).as_secs();
        let burst = Dep::dep_burst().predict(&trace, target).as_secs();
        assert!((plain - 0.25).abs() < 1e-12);
        assert!((burst - (0.5 / 4.0 + 0.5)).abs() < 1e-12);
    }

    #[test]
    fn names() {
        assert_eq!(Dep::plain().name(), "DEP");
        assert_eq!(Dep::dep_burst().name(), "DEP+BURST");
        assert_eq!(
            Dep::dep_burst_per_epoch().name(),
            "DEP+BURST (per-epoch CTP)"
        );
    }
}
