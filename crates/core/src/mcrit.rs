//! M+CRIT: the naive multithreaded extension of a single-thread DVFS
//! predictor (paper §II-C).
//!
//! Each thread's whole-run execution time — *including any time it spent
//! asleep* — is split into scaling and non-scaling parts using the
//! per-thread model's counters; the thread with the longest predicted time
//! at the target frequency is declared critical and its time is the
//! prediction. The deliberate flaw (the paper's motivation): futex sleep
//! time is misattributed to the scaling component, so synchronization-heavy
//! managed workloads are badly mispredicted.

use dvfs_trace::{ExecutionTrace, Freq, TimeDelta};

use crate::{DvfsPredictor, NonScalingModel};

/// The M+CRIT predictor (optionally with BURST, and with any per-thread
/// model despite the name — the paper instantiates it with CRIT).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MCrit {
    model: NonScalingModel,
    burst: bool,
}

impl MCrit {
    /// Creates the predictor.
    #[must_use]
    pub fn new(model: NonScalingModel, burst: bool) -> Self {
        MCrit { model, burst }
    }

    /// The paper's plain M+CRIT.
    #[must_use]
    pub fn plain() -> Self {
        MCrit::new(NonScalingModel::Crit, false)
    }

    /// M+CRIT with store-burst modelling (M+CRIT+BURST).
    #[must_use]
    pub fn with_burst() -> Self {
        MCrit::new(NonScalingModel::Crit, true)
    }
}

impl DvfsPredictor for MCrit {
    fn predict(&self, trace: &ExecutionTrace, target: Freq) -> TimeDelta {
        let ratio = trace.base.scaling_ratio_to(target);
        let mut best = TimeDelta::ZERO;
        for totals in trace.thread_totals().values() {
            // The naive model: everything that is not measured non-scaling
            // — including sleep — is assumed to scale.
            let ns = self
                .model
                .non_scaling(&totals.counters, self.burst)
                .min(totals.presence);
            let scaling = totals.presence - ns;
            let predicted = scaling * ratio + ns;
            best = best.max(predicted);
        }
        best
    }

    fn name(&self) -> String {
        let mut n = format!("M+{}", self.model.label());
        if self.burst {
            n.push_str("+BURST");
        }
        n
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dvfs_trace::{
        DvfsCounters, EpochEnd, EpochRecord, ThreadId, ThreadInfo, ThreadRole, ThreadSlice, Time,
    };

    /// Two threads: t0 runs the whole second; t1 sleeps for the second
    /// half. All work is pure compute (fully scaling).
    fn trace_with_sleeper() -> ExecutionTrace {
        let t = Time::from_secs;
        let active = |secs: f64| DvfsCounters {
            active: TimeDelta::from_secs(secs),
            ..DvfsCounters::zero()
        };
        ExecutionTrace {
            base: Freq::from_ghz(1.0),
            start: t(0.0),
            total: TimeDelta::from_secs(1.0),
            epochs: vec![
                EpochRecord {
                    start: t(0.0),
                    duration: TimeDelta::from_secs(0.5),
                    threads: vec![
                        ThreadSlice {
                            thread: ThreadId(0),
                            counters: active(0.5),
                        },
                        ThreadSlice {
                            thread: ThreadId(1),
                            counters: active(0.5),
                        },
                    ],
                    end: EpochEnd::Stall(ThreadId(1)),
                },
                EpochRecord {
                    start: t(0.5),
                    duration: TimeDelta::from_secs(0.5),
                    threads: vec![ThreadSlice {
                        thread: ThreadId(0),
                        counters: active(0.5),
                    }],
                    end: EpochEnd::TraceEnd,
                },
            ],
            markers: vec![],
            threads: vec![
                ThreadInfo {
                    id: ThreadId(0),
                    role: ThreadRole::Application,
                    name: "t0".into(),
                    spawn: t(0.0),
                    exit: None,
                },
                ThreadInfo {
                    id: ThreadId(1),
                    role: ThreadRole::Application,
                    name: "t1".into(),
                    spawn: t(0.0),
                    exit: None,
                },
            ],
        }
    }

    #[test]
    fn identity_prediction_reproduces_total() {
        let trace = trace_with_sleeper();
        let p = MCrit::plain();
        let id = p.predict(&trace, Freq::from_ghz(1.0));
        assert!((id.as_secs() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn sleep_time_is_wrongly_scaled() {
        // The paper's motivating flaw: t1 slept 0.5 s, but M+CRIT treats
        // that sleep as scaling work. Prediction at 4 GHz: each thread's
        // presence (1 s) / 4 = 0.25 s. The *true* answer would be 0.25 s of
        // compute for t0... which here coincides; the point is t1's sleep
        // is treated identically to t0's work.
        let trace = trace_with_sleeper();
        let p = MCrit::plain();
        let pred = p.predict(&trace, Freq::from_ghz(4.0));
        assert!((pred.as_secs() - 0.25).abs() < 1e-12);
    }

    #[test]
    fn burst_moves_sq_time_to_non_scaling() {
        let mut trace = trace_with_sleeper();
        // Give t0 0.4 s of store-queue-full time in epoch 0.
        trace.epochs[0].threads[0].counters.sq_full = TimeDelta::from_secs(0.4);
        let plain = MCrit::plain().predict(&trace, Freq::from_ghz(4.0));
        let burst = MCrit::with_burst().predict(&trace, Freq::from_ghz(4.0));
        // With BURST: (1.0 - 0.4) / 4 + 0.4 = 0.55 vs 0.25 plain.
        assert!((plain.as_secs() - 0.25).abs() < 1e-12);
        assert!((burst.as_secs() - 0.55).abs() < 1e-12);
    }

    #[test]
    fn name_reflects_configuration() {
        assert_eq!(MCrit::plain().name(), "M+CRIT");
        assert_eq!(MCrit::with_burst().name(), "M+CRIT+BURST");
        assert_eq!(
            MCrit::new(NonScalingModel::LeadingLoads, false).name(),
            "M+LL"
        );
    }
}
