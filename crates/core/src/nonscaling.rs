//! The per-thread scaling/non-scaling decomposition (paper §II-A).

use core::fmt;

use dvfs_trace::{DvfsCounters, TimeDelta};
use serde::{Deserialize, Serialize};

/// Which published single-thread DVFS model supplies a thread's
/// non-scaling component.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum NonScalingModel {
    /// Stall time \[16\], \[26\]: time the pipeline could not commit. Simple,
    /// deployable on stock counters, systematically underestimates.
    StallTime,
    /// Leading loads \[16\], \[26\], \[34\]: full latency of the leading miss of
    /// each miss burst. Assumes uniform miss latency.
    LeadingLoads,
    /// CRIT \[31\]: critical path through clusters of dependent long-latency
    /// misses. The state of the art; what the paper builds on.
    Crit,
}

impl NonScalingModel {
    /// The non-scaling time this model reports for a counter delta.
    /// With `burst`, the store-queue-full time (the paper's new counter,
    /// §III-D) is added on top.
    #[must_use]
    pub fn non_scaling(self, counters: &DvfsCounters, burst: bool) -> TimeDelta {
        let base = match self {
            NonScalingModel::StallTime => counters.stall,
            NonScalingModel::LeadingLoads => counters.leading_loads,
            NonScalingModel::Crit => counters.crit,
        };
        // The stall-time counter already observes store-queue-full commit
        // stalls on real hardware; adding the dedicated counter on top
        // would double-count for that model.
        let extra = if burst && self != NonScalingModel::StallTime {
            counters.sq_full
        } else {
            TimeDelta::ZERO
        };
        base + extra
    }

    /// Splits a counter delta into `(scaling, non_scaling)` such that the
    /// parts sum to the measured active time. The non-scaling estimate is
    /// clipped to the active time (an estimate can slightly exceed it at
    /// epoch granularity).
    #[must_use]
    pub fn split(self, counters: &DvfsCounters, burst: bool) -> (TimeDelta, TimeDelta) {
        let ns = self.non_scaling(counters, burst).min(counters.active);
        (counters.active - ns, ns)
    }

    /// Predicted active time at a scaling ratio `base_freq / target_freq`.
    #[must_use]
    pub fn predict_active(self, counters: &DvfsCounters, burst: bool, ratio: f64) -> TimeDelta {
        let (scaling, non_scaling) = self.split(counters, burst);
        scaling * ratio + non_scaling
    }

    /// Short display label (e.g. for table headers).
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            NonScalingModel::StallTime => "STALL",
            NonScalingModel::LeadingLoads => "LL",
            NonScalingModel::Crit => "CRIT",
        }
    }
}

impl fmt::Display for NonScalingModel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn counters() -> DvfsCounters {
        DvfsCounters {
            active: TimeDelta::from_micros(100.0),
            crit: TimeDelta::from_micros(40.0),
            leading_loads: TimeDelta::from_micros(30.0),
            stall: TimeDelta::from_micros(20.0),
            sq_full: TimeDelta::from_micros(10.0),
            ..DvfsCounters::zero()
        }
    }

    #[test]
    fn models_pick_their_counter() {
        let c = counters();
        assert_eq!(
            NonScalingModel::Crit.non_scaling(&c, false),
            TimeDelta::from_micros(40.0)
        );
        assert_eq!(
            NonScalingModel::LeadingLoads.non_scaling(&c, false),
            TimeDelta::from_micros(30.0)
        );
        assert_eq!(
            NonScalingModel::StallTime.non_scaling(&c, false),
            TimeDelta::from_micros(20.0)
        );
    }

    #[test]
    fn burst_adds_sq_full_except_for_stall() {
        let c = counters();
        assert_eq!(
            NonScalingModel::Crit.non_scaling(&c, true),
            TimeDelta::from_micros(50.0)
        );
        assert_eq!(
            NonScalingModel::StallTime.non_scaling(&c, true),
            TimeDelta::from_micros(20.0)
        );
    }

    #[test]
    fn split_parts_sum_to_active() {
        let c = counters();
        let (s, ns) = NonScalingModel::Crit.split(&c, true);
        assert_eq!(s + ns, c.active);
    }

    #[test]
    fn split_clips_overlarge_estimates() {
        let mut c = counters();
        c.crit = TimeDelta::from_micros(500.0);
        let (s, ns) = NonScalingModel::Crit.split(&c, false);
        assert_eq!(s, TimeDelta::ZERO);
        assert_eq!(ns, c.active);
    }

    #[test]
    fn predict_active_scales_only_scaling_part() {
        let c = counters();
        // 60 us scaling + 40 us non-scaling at ratio 0.25 -> 15 + 40.
        let p = NonScalingModel::Crit.predict_active(&c, false, 0.25);
        assert!((p.as_micros() - 55.0).abs() < 1e-9);
        // Identity ratio reproduces the measurement.
        let id = NonScalingModel::Crit.predict_active(&c, false, 1.0);
        assert_eq!(id, c.active);
    }
}
