//! Prediction-error metrics, matching the paper's reporting (§V-A):
//! relative error `estimated/actual - 1`, negative = underestimated
//! execution time (overestimated performance), and mean absolute error
//! across benchmarks.

use dvfs_trace::TimeDelta;

/// Signed relative prediction error: `estimated / actual - 1`.
///
/// Returns 0 when `actual` is zero.
#[must_use]
pub fn relative_error(estimated: TimeDelta, actual: TimeDelta) -> f64 {
    let a = actual.as_secs();
    if a == 0.0 {
        0.0
    } else {
        estimated.as_secs() / a - 1.0
    }
}

/// Mean of absolute errors (the paper's "average absolute error").
#[must_use]
pub fn mean_absolute_error(errors: &[f64]) -> f64 {
    if errors.is_empty() {
        0.0
    } else {
        errors.iter().map(|e| e.abs()).sum::<f64>() / errors.len() as f64
    }
}

/// Summary statistics over a set of signed errors.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct ErrorStats {
    /// Mean of absolute errors.
    pub mean_abs: f64,
    /// Mean of signed errors (bias).
    pub mean_signed: f64,
    /// Largest absolute error.
    pub max_abs: f64,
}

impl ErrorStats {
    /// Computes the statistics.
    #[must_use]
    pub fn from_errors(errors: &[f64]) -> Self {
        if errors.is_empty() {
            return ErrorStats::default();
        }
        let n = errors.len() as f64;
        ErrorStats {
            mean_abs: errors.iter().map(|e| e.abs()).sum::<f64>() / n,
            mean_signed: errors.iter().sum::<f64>() / n,
            max_abs: errors.iter().map(|e| e.abs()).fold(0.0, f64::max),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn relative_error_signs() {
        let actual = TimeDelta::from_millis(100.0);
        assert!((relative_error(TimeDelta::from_millis(90.0), actual) + 0.1).abs() < 1e-12);
        assert!((relative_error(TimeDelta::from_millis(120.0), actual) - 0.2).abs() < 1e-12);
        assert_eq!(relative_error(TimeDelta::from_millis(5.0), TimeDelta::ZERO), 0.0);
    }

    #[test]
    fn mean_absolute() {
        assert!((mean_absolute_error(&[0.1, -0.3, 0.2]) - 0.2).abs() < 1e-12);
        assert_eq!(mean_absolute_error(&[]), 0.0);
    }

    #[test]
    fn stats() {
        let s = ErrorStats::from_errors(&[0.1, -0.3, 0.2]);
        assert!((s.mean_abs - 0.2).abs() < 1e-12);
        assert!((s.mean_signed - 0.0).abs() < 1e-12);
        assert!((s.max_abs - 0.3).abs() < 1e-12);
    }
}
