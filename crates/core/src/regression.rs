//! An offline-trained regression predictor — the *other* family of DVFS
//! models the paper's related work surveys (§VII-A): instead of analytical
//! counter semantics, fit coefficients over observed (counters, frequency
//! ratio) → slowdown samples.
//!
//! The model predicts the execution-time ratio `T_target / T_base` from a
//! small feature vector by ordinary least squares:
//!
//! ```text
//! ratio_hat = w · [1, crit_frac, sq_frac, scaling_frac·r, r]
//! ```
//!
//! where `r = f_base/f_target`, `crit_frac` is the CRIT fraction of active
//! time and `sq_frac` the store-queue-full fraction. Trained on a set of
//! runs, it generalises only as far as its training distribution — the
//! weakness the paper's analytical approach avoids, and exactly what the
//! leave-one-benchmark-out ablation in the harness quantifies.

use dvfs_trace::{ExecutionTrace, Freq, TimeDelta};

use crate::DvfsPredictor;

/// Number of regression features.
const FEATURES: usize = 5;

/// Feature vector for one (trace, target) pair.
fn features(trace: &ExecutionTrace, target: Freq) -> [f64; FEATURES] {
    let r = trace.base.scaling_ratio_to(target);
    let totals = trace.thread_totals();
    let mut active = 0.0;
    let mut crit = 0.0;
    let mut sq = 0.0;
    for t in totals.values() {
        active += t.counters.active.as_secs();
        crit += t.counters.crit.as_secs();
        sq += t.counters.sq_full.as_secs();
    }
    let (crit_frac, sq_frac) = if active > 0.0 {
        (crit / active, sq / active)
    } else {
        (0.0, 0.0)
    };
    let scaling_frac = (1.0 - crit_frac - sq_frac).max(0.0);
    [1.0, crit_frac, sq_frac, scaling_frac * r, r]
}

/// Training-set accumulator.
#[derive(Debug, Default, Clone)]
pub struct RegressionTrainer {
    rows: Vec<[f64; FEATURES]>,
    targets: Vec<f64>,
}

impl RegressionTrainer {
    /// An empty trainer.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds one observation: a base-frequency trace, a target frequency,
    /// and the measured execution time at that target.
    pub fn observe(&mut self, trace: &ExecutionTrace, target: Freq, actual: TimeDelta) {
        if trace.total.as_secs() <= 0.0 {
            return;
        }
        self.rows.push(features(trace, target));
        self.targets.push(actual.as_secs() / trace.total.as_secs());
    }

    /// Number of observations so far.
    #[must_use]
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True if no observations were added.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Fits the model by ordinary least squares (normal equations with a
    /// small ridge term for numerical safety). Needs at least as many
    /// observations as features.
    pub fn fit(&self) -> Result<RegressionPredictor, RegressionError> {
        let n = self.rows.len();
        if n < FEATURES {
            return Err(RegressionError::TooFewSamples {
                have: n,
                need: FEATURES,
            });
        }
        // Normal equations: (XᵀX + λI) w = Xᵀy.
        let mut ata = [[0.0f64; FEATURES]; FEATURES];
        let mut aty = [0.0f64; FEATURES];
        for (x, &y) in self.rows.iter().zip(&self.targets) {
            for i in 0..FEATURES {
                aty[i] += x[i] * y;
                for j in 0..FEATURES {
                    ata[i][j] += x[i] * x[j];
                }
            }
        }
        let ridge = 1e-9 * n as f64;
        for (i, row) in ata.iter_mut().enumerate() {
            row[i] += ridge;
        }
        let weights = solve(ata, aty).ok_or(RegressionError::Singular)?;
        Ok(RegressionPredictor { weights })
    }
}

/// Gaussian elimination with partial pivoting for the tiny normal system.
fn solve(
    mut a: [[f64; FEATURES]; FEATURES],
    mut b: [f64; FEATURES],
) -> Option<[f64; FEATURES]> {
    for col in 0..FEATURES {
        let pivot = (col..FEATURES).max_by(|&i, &j| {
            a[i][col]
                .abs()
                .partial_cmp(&a[j][col].abs())
                .expect("finite")
        })?;
        if a[pivot][col].abs() < 1e-14 {
            return None;
        }
        a.swap(col, pivot);
        b.swap(col, pivot);
        let pivot_row = a[col];
        for row in (col + 1)..FEATURES {
            let f = a[row][col] / pivot_row[col];
            for (dst, src) in a[row].iter_mut().zip(pivot_row.iter()).skip(col) {
                *dst -= f * src;
            }
            b[row] -= f * b[col];
        }
    }
    let mut x = [0.0f64; FEATURES];
    for col in (0..FEATURES).rev() {
        let mut acc = b[col];
        for k in (col + 1)..FEATURES {
            acc -= a[col][k] * x[k];
        }
        x[col] = acc / a[col][col];
    }
    Some(x)
}

/// Training failures.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RegressionError {
    /// Not enough observations to fit the feature count.
    TooFewSamples {
        /// Observations available.
        have: usize,
        /// Observations required.
        need: usize,
    },
    /// The normal equations were singular (degenerate training set).
    Singular,
}

impl std::fmt::Display for RegressionError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RegressionError::TooFewSamples { have, need } => {
                write!(f, "regression needs {need} samples, got {have}")
            }
            RegressionError::Singular => write!(f, "singular normal equations"),
        }
    }
}

impl std::error::Error for RegressionError {}

/// The fitted offline-regression predictor.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RegressionPredictor {
    weights: [f64; FEATURES],
}

impl RegressionPredictor {
    /// The fitted weights (for inspection).
    #[must_use]
    pub fn weights(&self) -> &[f64; FEATURES] {
        &self.weights
    }
}

impl DvfsPredictor for RegressionPredictor {
    fn predict(&self, trace: &ExecutionTrace, target: Freq) -> TimeDelta {
        let x = features(trace, target);
        let ratio: f64 = self
            .weights
            .iter()
            .zip(&x)
            .map(|(w, f)| w * f)
            .sum::<f64>()
            .max(0.0);
        trace.total * ratio
    }

    fn name(&self) -> String {
        "REGRESSION".to_owned()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dvfs_trace::{
        DvfsCounters, EpochEnd, EpochRecord, ThreadId, ThreadInfo, ThreadRole, ThreadSlice, Time,
    };

    /// A single-epoch trace with a given crit/sq decomposition.
    fn trace(total_s: f64, crit_frac: f64, sq_frac: f64) -> ExecutionTrace {
        let counters = DvfsCounters {
            active: TimeDelta::from_secs(total_s),
            crit: TimeDelta::from_secs(total_s * crit_frac),
            sq_full: TimeDelta::from_secs(total_s * sq_frac),
            ..DvfsCounters::zero()
        };
        ExecutionTrace {
            base: Freq::from_ghz(1.0),
            start: Time::ZERO,
            total: TimeDelta::from_secs(total_s),
            epochs: vec![EpochRecord {
                start: Time::ZERO,
                duration: TimeDelta::from_secs(total_s),
                threads: vec![ThreadSlice {
                    thread: ThreadId(0),
                    counters,
                }],
                end: EpochEnd::TraceEnd,
            }],
            markers: vec![],
            threads: vec![ThreadInfo {
                id: ThreadId(0),
                role: ThreadRole::Application,
                name: "t0".into(),
                spawn: Time::ZERO,
                exit: None,
            }],
        }
    }

    /// Ground truth for the synthetic world the tests train in.
    fn truth(total_s: f64, crit_frac: f64, sq_frac: f64, target: Freq) -> TimeDelta {
        let r = Freq::from_ghz(1.0).scaling_ratio_to(target);
        TimeDelta::from_secs(
            total_s * (crit_frac + sq_frac) + total_s * (1.0 - crit_frac - sq_frac) * r,
        )
    }

    fn trained() -> RegressionPredictor {
        let mut trainer = RegressionTrainer::new();
        for &cf in &[0.0, 0.2, 0.4, 0.6] {
            for &sf in &[0.0, 0.1, 0.3] {
                for &ghz in &[2.0, 3.0, 4.0] {
                    let t = trace(1.0, cf, sf);
                    let target = Freq::from_ghz(ghz);
                    trainer.observe(&t, target, truth(1.0, cf, sf, target));
                }
            }
        }
        assert_eq!(trainer.len(), 36);
        trainer.fit().expect("fits")
    }

    #[test]
    fn learns_the_linear_world_exactly() {
        let model = trained();
        // In-distribution prediction is near-exact (the world is linear in
        // the features).
        for &(cf, sf, ghz) in &[(0.3, 0.2, 4.0), (0.5, 0.05, 2.0)] {
            let t = trace(1.0, cf, sf);
            let target = Freq::from_ghz(ghz);
            let p = model.predict(&t, target).as_secs();
            let y = truth(1.0, cf, sf, target).as_secs();
            assert!(
                (p - y).abs() / y < 0.02,
                "cf={cf} sf={sf} ghz={ghz}: {p} vs {y}"
            );
        }
    }

    #[test]
    fn too_few_samples_is_an_error() {
        let mut trainer = RegressionTrainer::new();
        trainer.observe(
            &trace(1.0, 0.2, 0.1),
            Freq::from_ghz(2.0),
            TimeDelta::from_secs(0.6),
        );
        assert!(matches!(
            trainer.fit(),
            Err(RegressionError::TooFewSamples { .. })
        ));
        assert!(!trainer.is_empty());
    }

    #[test]
    fn degenerate_training_set_is_singular_or_fits_ridge() {
        // All-identical samples: the ridge keeps it solvable, and the
        // prediction at the training point is still right.
        let mut trainer = RegressionTrainer::new();
        for _ in 0..8 {
            trainer.observe(
                &trace(1.0, 0.2, 0.1),
                Freq::from_ghz(2.0),
                TimeDelta::from_secs(0.65),
            );
        }
        if let Ok(model) = trainer.fit() {
            let p = model
                .predict(&trace(1.0, 0.2, 0.1), Freq::from_ghz(2.0))
                .as_secs();
            assert!((p - 0.65).abs() < 0.05, "got {p}");
        }
    }

    #[test]
    fn prediction_is_clamped_non_negative() {
        let model = RegressionPredictor {
            weights: [-10.0, 0.0, 0.0, 0.0, 0.0],
        };
        let p = model.predict(&trace(1.0, 0.2, 0.1), Freq::from_ghz(2.0));
        assert_eq!(p, TimeDelta::ZERO);
    }
}
