//! The predictor interface.

use dvfs_trace::{ExecutionTrace, Freq, TimeDelta};

/// A DVFS performance predictor: estimates how long the work captured in a
/// trace (measured at `trace.base`) would take at a different frequency.
pub trait DvfsPredictor: std::fmt::Debug {
    /// Predicted wall-clock duration of the traced work at `target`.
    fn predict(&self, trace: &ExecutionTrace, target: Freq) -> TimeDelta;

    /// Display name (e.g. `"DEP+BURST"`).
    fn name(&self) -> String;

    /// Predicted slowdown (>1 means slower) at `target` relative to
    /// `reference` — used by the energy manager to check a tolerable-
    /// slowdown constraint against the highest frequency.
    fn predict_slowdown(&self, trace: &ExecutionTrace, target: Freq, reference: Freq) -> f64 {
        let at_target = self.predict(trace, target).as_secs();
        let at_reference = self.predict(trace, reference).as_secs();
        if at_reference <= 0.0 {
            1.0
        } else {
            at_target / at_reference
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dvfs_trace::Time;

    #[derive(Debug)]
    struct Linear;

    impl DvfsPredictor for Linear {
        fn predict(&self, trace: &ExecutionTrace, target: Freq) -> TimeDelta {
            trace.total * trace.base.scaling_ratio_to(target)
        }
        fn name(&self) -> String {
            "LINEAR".into()
        }
    }

    #[test]
    fn default_slowdown_uses_two_predictions() {
        let trace = ExecutionTrace {
            base: Freq::from_ghz(2.0),
            start: Time::ZERO,
            total: TimeDelta::from_millis(8.0),
            epochs: vec![],
            markers: vec![],
            threads: vec![],
        };
        let p = Linear;
        let s = p.predict_slowdown(&trace, Freq::from_ghz(2.0), Freq::from_ghz(4.0));
        assert!((s - 2.0).abs() < 1e-12);
    }
}
