//! The predictor interface.

use dvfs_trace::{ExecutionTrace, Freq, TimeDelta};

/// The largest slowdown (or reciprocal speedup) treated as physically
/// plausible by default: DVFS ladders span at most a few-fold frequency
/// range, so a predicted slowdown beyond this factor indicates corrupted
/// counters rather than a real program behaviour.
pub const MAX_PLAUSIBLE_SLOWDOWN: f64 = 16.0;

/// A DVFS performance predictor: estimates how long the work captured in a
/// trace (measured at `trace.base`) would take at a different frequency.
pub trait DvfsPredictor: std::fmt::Debug {
    /// Predicted wall-clock duration of the traced work at `target`.
    fn predict(&self, trace: &ExecutionTrace, target: Freq) -> TimeDelta;

    /// Display name (e.g. `"DEP+BURST"`).
    fn name(&self) -> String;

    /// Predicted slowdown (>1 means slower) at `target` relative to
    /// `reference` — used by the energy manager to check a tolerable-
    /// slowdown constraint against the highest frequency. Equivalent to
    /// [`Self::predict_slowdown_clamped`] at [`MAX_PLAUSIBLE_SLOWDOWN`].
    fn predict_slowdown(&self, trace: &ExecutionTrace, target: Freq, reference: Freq) -> f64 {
        self.predict_slowdown_clamped(trace, target, reference, MAX_PLAUSIBLE_SLOWDOWN)
    }

    /// [`Self::predict_slowdown`] with a caller-chosen plausibility clamp.
    ///
    /// Degenerate predictions — NaN or infinite durations, a negative
    /// target time, a non-positive reference time — yield the neutral
    /// slowdown `1.0` instead of propagating NaN into frequency decisions.
    /// Otherwise the ratio is clamped into `[1/clamp, clamp]`; a `clamp`
    /// that is itself degenerate (non-finite or < 1) falls back to
    /// [`MAX_PLAUSIBLE_SLOWDOWN`].
    fn predict_slowdown_clamped(
        &self,
        trace: &ExecutionTrace,
        target: Freq,
        reference: Freq,
        clamp: f64,
    ) -> f64 {
        let at_target = self.predict(trace, target).as_secs();
        let at_reference = self.predict(trace, reference).as_secs();
        if !at_target.is_finite() || !at_reference.is_finite() || at_target < 0.0 || at_reference <= 0.0
        {
            return 1.0;
        }
        let clamp = if clamp.is_finite() && clamp >= 1.0 {
            clamp
        } else {
            MAX_PLAUSIBLE_SLOWDOWN
        };
        (at_target / at_reference).clamp(1.0 / clamp, clamp)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dvfs_trace::Time;

    #[derive(Debug)]
    struct Linear;

    impl DvfsPredictor for Linear {
        fn predict(&self, trace: &ExecutionTrace, target: Freq) -> TimeDelta {
            trace.total * trace.base.scaling_ratio_to(target)
        }
        fn name(&self) -> String {
            "LINEAR".into()
        }
    }

    fn trace_at(base: Freq) -> ExecutionTrace {
        ExecutionTrace {
            base,
            start: Time::ZERO,
            total: TimeDelta::from_millis(8.0),
            epochs: vec![],
            markers: vec![],
            threads: vec![],
        }
    }

    #[test]
    fn default_slowdown_uses_two_predictions() {
        let p = Linear;
        let s = p.predict_slowdown(
            &trace_at(Freq::from_ghz(2.0)),
            Freq::from_ghz(2.0),
            Freq::from_ghz(4.0),
        );
        assert!((s - 2.0).abs() < 1e-12);
    }

    /// A predictor returning a fixed (possibly degenerate) duration.
    #[derive(Debug)]
    struct Fixed(f64);

    impl DvfsPredictor for Fixed {
        fn predict(&self, _trace: &ExecutionTrace, _target: Freq) -> TimeDelta {
            TimeDelta::from_secs(self.0)
        }
        fn name(&self) -> String {
            "FIXED".into()
        }
    }

    #[test]
    fn degenerate_predictions_yield_neutral_slowdown() {
        let trace = trace_at(Freq::from_ghz(2.0));
        let f2 = Freq::from_ghz(2.0);
        let f4 = Freq::from_ghz(4.0);
        for bad in [f64::NAN, f64::INFINITY, f64::NEG_INFINITY, -1.0, 0.0] {
            let s = Fixed(bad).predict_slowdown(&trace, f2, f4);
            assert!((s - 1.0).abs() < 1e-12, "prediction {bad} gave slowdown {s}");
        }
    }

    /// A predictor whose target/reference ratio is absurdly large.
    #[derive(Debug)]
    struct Cliff;

    impl DvfsPredictor for Cliff {
        fn predict(&self, _trace: &ExecutionTrace, target: Freq) -> TimeDelta {
            if target >= Freq::from_ghz(4.0) {
                TimeDelta::from_secs(1e-9)
            } else {
                TimeDelta::from_secs(1e3)
            }
        }
        fn name(&self) -> String {
            "CLIFF".into()
        }
    }

    #[test]
    fn implausible_ratios_are_clamped() {
        let trace = trace_at(Freq::from_ghz(2.0));
        let f2 = Freq::from_ghz(2.0);
        let f4 = Freq::from_ghz(4.0);
        let s = Cliff.predict_slowdown(&trace, f2, f4);
        assert!((s - MAX_PLAUSIBLE_SLOWDOWN).abs() < 1e-12, "got {s}");
        let tight = Cliff.predict_slowdown_clamped(&trace, f2, f4, 4.0);
        assert!((tight - 4.0).abs() < 1e-12, "got {tight}");
        // Reciprocal direction clamps too.
        let speedup = Cliff.predict_slowdown_clamped(&trace, f4, f2, 4.0);
        assert!((speedup - 0.25).abs() < 1e-12, "got {speedup}");
        // A degenerate clamp falls back to the default.
        let fallback = Cliff.predict_slowdown_clamped(&trace, f2, f4, f64::NAN);
        assert!((fallback - MAX_PLAUSIBLE_SLOWDOWN).abs() < 1e-12);
    }
}
