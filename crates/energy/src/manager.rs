//! The energy manager (paper §VI-A, Fig. 5).
//!
//! The application always starts at the highest frequency. At the end of
//! every scheduling quantum the manager harvests the interval's DVFS
//! counters, asks the performance predictor for the interval's duration at
//! every DVFS state *and* at the maximum frequency, and selects the lowest
//! frequency whose predicted slowdown relative to the maximum frequency is
//! within the user-specified `tolerable_slowdown`. A `hold_off` parameter
//! suppresses re-decisions for a number of quanta. If each interval keeps
//! its slowdown within x%, the whole run is within x% of always running at
//! the maximum frequency.

use depburst::DvfsPredictor;
use dvfs_trace::{Freq, TimeDelta};
use simx::{Machine, MachineError, RunOutcome};

use crate::power::{EnergyAccount, PowerModel};

/// Manager parameters (paper defaults: 5 ms quantum, hold-off 1).
#[derive(Debug, Clone, Copy)]
pub struct ManagerConfig {
    /// Maximum tolerated slowdown vs. always-max-frequency (0.05 = 5%).
    pub tolerable_slowdown: f64,
    /// Scheduling quantum.
    pub quantum: TimeDelta,
    /// Quanta to wait between frequency decisions.
    pub hold_off: u32,
    /// The chip power model (provides the DVFS ladder and V/f curve).
    pub power: PowerModel,
}

impl ManagerConfig {
    /// Paper defaults with the given slowdown threshold.
    #[must_use]
    pub fn with_threshold(tolerable_slowdown: f64) -> Self {
        ManagerConfig {
            tolerable_slowdown,
            quantum: TimeDelta::from_millis(5.0),
            hold_off: 1,
            power: PowerModel::haswell_22nm(),
        }
    }
}

/// What a managed run produced.
#[derive(Debug, Clone)]
pub struct ManagerReport {
    /// Wall-clock execution time under management.
    pub exec: TimeDelta,
    /// Total energy consumed (joules).
    pub energy_j: f64,
    /// Time spent at each frequency, for analysis.
    pub freq_time: Vec<(Freq, TimeDelta)>,
    /// Number of frequency decisions taken.
    pub decisions: u64,
    /// Number of decisions that changed the frequency.
    pub switches: u64,
}

impl ManagerReport {
    /// Time-weighted mean frequency (GHz).
    #[must_use]
    pub fn mean_ghz(&self) -> f64 {
        let total: f64 = self.freq_time.iter().map(|(_, t)| t.as_secs()).sum();
        if total == 0.0 {
            return 0.0;
        }
        self.freq_time
            .iter()
            .map(|(f, t)| f.ghz() * t.as_secs())
            .sum::<f64>()
            / total
    }
}

/// The quantum-based DVFS energy manager.
pub struct EnergyManager {
    config: ManagerConfig,
    predictor: Box<dyn DvfsPredictor>,
}

impl std::fmt::Debug for EnergyManager {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("EnergyManager")
            .field("config", &self.config)
            .field("predictor", &self.predictor.name())
            .finish()
    }
}

impl EnergyManager {
    /// Creates a manager around a performance predictor.
    #[must_use]
    pub fn new(config: ManagerConfig, predictor: Box<dyn DvfsPredictor>) -> Self {
        EnergyManager { config, predictor }
    }

    /// Runs the already-installed application on `machine` under
    /// management, to completion.
    pub fn run(&self, machine: &mut Machine) -> Result<ManagerReport, MachineError> {
        let ladder = *self.config.power.vf().ladder();
        let f_max = ladder.max();
        let cores = machine.config().cores;
        machine.set_frequency(f_max)?;

        let mut account = EnergyAccount::new();
        let mut freq_time: Vec<(Freq, TimeDelta)> = Vec::new();
        let mut decisions = 0u64;
        let mut switches = 0u64;
        let mut held = self.config.hold_off; // decide after the 1st quantum
        let start = machine.now();

        loop {
            let interval_start = machine.now();
            let outcome = machine.run_for(self.config.quantum)?;
            let duration = machine.now().since(interval_start);
            let freq = machine.frequency();
            let trace = machine.harvest_trace();

            // Energy accounting: aggregate activity over the interval.
            let busy: f64 = trace
                .epochs
                .iter()
                .flat_map(|e| e.threads.iter())
                .map(|s| s.counters.active.as_secs())
                .sum();
            let activity = if duration.as_secs() > 0.0 {
                (busy / (cores as f64 * duration.as_secs())).clamp(0.0, 1.0)
            } else {
                0.0
            };
            account.add(
                &self.config.power,
                freq,
                duration,
                &vec![activity; cores],
            );
            match freq_time.iter_mut().find(|(f, _)| *f == freq) {
                Some((_, t)) => *t += duration,
                None => freq_time.push((freq, duration)),
            }

            if let RunOutcome::Completed(end) = outcome {
                return Ok(ManagerReport {
                    exec: end.since(start),
                    energy_j: account.joules(),
                    freq_time,
                    decisions,
                    switches,
                });
            }

            held += 1;
            if held < self.config.hold_off {
                continue;
            }
            held = 0;
            decisions += 1;
            let chosen = self.choose_frequency(&trace, f_max, &ladder);
            if chosen != freq {
                switches += 1;
            }
            machine.set_frequency(chosen)?;
        }
    }

    /// The lowest frequency whose predicted slowdown vs. `f_max` is within
    /// the threshold (paper: of all states satisfying the constraint, the
    /// lowest frequency minimises energy).
    fn choose_frequency(
        &self,
        trace: &dvfs_trace::ExecutionTrace,
        f_max: Freq,
        ladder: &dvfs_trace::FreqLadder,
    ) -> Freq {
        let at_max = self.predictor.predict(trace, f_max).as_secs();
        if at_max <= 0.0 {
            return f_max;
        }
        let budget = at_max * (1.0 + self.config.tolerable_slowdown);
        for f in ladder.iter() {
            let predicted = self.predictor.predict(trace, f).as_secs();
            if predicted <= budget {
                return f;
            }
        }
        f_max
    }

    /// The time the manager's machine started from (for tests).
    #[must_use]
    pub fn config(&self) -> &ManagerConfig {
        &self.config
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dvfs_trace::{ExecutionTrace, ThreadRole};
    use simx::program::ScriptProgram;
    use simx::{Action, MachineConfig, SpawnRequest, WorkItem};

    /// A predictor that scales the whole trace perfectly (pure compute).
    #[derive(Debug)]
    struct PerfectScaling;

    impl DvfsPredictor for PerfectScaling {
        fn predict(&self, trace: &ExecutionTrace, target: Freq) -> TimeDelta {
            trace.total * trace.base.scaling_ratio_to(target)
        }
        fn name(&self) -> String {
            "PERFECT-SCALING".into()
        }
    }

    fn compute_machine() -> Machine {
        let mut mc = MachineConfig::haswell_quad();
        mc.initial_freq = Freq::from_ghz(1.0);
        let mut m = Machine::new(mc);
        m.spawn(SpawnRequest::new(
            "app",
            ThreadRole::Application,
            Box::new(ScriptProgram::new(vec![Action::Work(WorkItem::Compute {
                instructions: 200_000_000,
                ipc: 2.0,
            })])),
        ));
        m
    }

    #[test]
    fn pure_compute_under_perfect_predictor_respects_threshold() {
        // Baseline: always max frequency.
        let mut base = compute_machine();
        base.set_frequency(Freq::from_ghz(4.0)).expect("clean");
        let t_max = match base.run().expect("runs") {
            RunOutcome::Completed(t) => t.as_secs(),
            RunOutcome::DeadlineReached => unreachable!(),
        };

        let threshold = 0.10;
        let manager = EnergyManager::new(
            ManagerConfig::with_threshold(threshold),
            Box::new(PerfectScaling),
        );
        let mut m = compute_machine();
        let report = manager.run(&mut m).expect("managed run");
        let slowdown = report.exec.as_secs() / t_max - 1.0;
        assert!(
            slowdown <= threshold + 0.02,
            "slowdown {slowdown} must respect threshold {threshold}"
        );
        // For pure compute the manager should sit just under the bound
        // (frequency ≈ 4/1.1 ≈ 3.625 GHz).
        let mean = report.mean_ghz();
        assert!(
            (3.3..4.0).contains(&mean),
            "mean frequency {mean} GHz should sit near 4/(1+threshold)"
        );
        assert!(report.energy_j > 0.0);
        assert!(report.decisions > 0);
    }

    #[test]
    fn zero_threshold_stays_at_max() {
        let manager = EnergyManager::new(
            ManagerConfig::with_threshold(0.0),
            Box::new(PerfectScaling),
        );
        let mut m = compute_machine();
        let report = manager.run(&mut m).expect("managed run");
        let mean = report.mean_ghz();
        assert!(
            (mean - 4.0).abs() < 1e-9,
            "zero tolerance must pin max frequency, got {mean}"
        );
        assert_eq!(report.switches, 0);
    }
}
