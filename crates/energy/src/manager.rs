//! The energy manager (paper §VI-A, Fig. 5).
//!
//! The application always starts at the highest frequency. At the end of
//! every scheduling quantum the manager harvests the interval's DVFS
//! counters, asks the performance predictor for the interval's duration at
//! every DVFS state *and* at the maximum frequency, and selects the lowest
//! frequency whose predicted slowdown relative to the maximum frequency is
//! within the user-specified `tolerable_slowdown`. A `hold_off` parameter
//! suppresses re-decisions for a number of quanta. If each interval keeps
//! its slowdown within x%, the whole run is within x% of always running at
//! the maximum frequency.
//!
//! # Hardening
//!
//! The paper's manager trusts its counter harvests and its DVFS requests
//! unconditionally; with [`ManagerConfig::hardening`] enabled (see
//! [`HardeningConfig`]) it instead degrades gracefully under the fault
//! classes of [`simx::faults`]:
//!
//! * predictions are sanity-gated — non-finite, negative, or implausibly
//!   scaled predictions are rejected (the frequency state they argue for
//!   is skipped) rather than acted on;
//! * sustained misprediction is detected by checking each quantum's
//!   *identity prediction* (the predicted duration of the harvested trace
//!   at the frequency it was measured at) against the observed duration;
//! * after [`HardeningConfig::misprediction_window`] consecutive bad
//!   quanta the manager falls back to the maximum frequency — never worse
//!   than 0% slowdown — and holds it for an exponentially growing backoff
//!   before cautiously re-engaging prediction-driven scaling;
//! * denied DVFS transitions ([`simx::MachineError::TransitionDenied`])
//!   are tolerated and counted instead of aborting the run.
//!
//! With hardening disabled — or enabled against a fault-free machine —
//! the manager's decisions, switches, execution time and energy are
//! bit-identical to the paper's original algorithm.

use depburst::DvfsPredictor;
use depburst_core::DepburstError;
use dvfs_trace::{Freq, TimeDelta};
use simx::{Machine, MachineError, RunOutcome};

use crate::power::{EnergyAccount, PowerModel};

/// Parameters of the hardened manager's graceful-degradation machinery.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HardeningConfig {
    /// Predictions implying a slowdown (or reciprocal speedup) beyond this
    /// factor vs. the maximum frequency are rejected as implausible.
    pub max_plausible_slowdown: f64,
    /// Relative error of the identity prediction (predicted duration of a
    /// quantum at its own measured frequency vs. observed duration) above
    /// which the quantum counts as mispredicted.
    pub misprediction_tolerance: f64,
    /// Consecutive mispredicted quanta before falling back to the maximum
    /// frequency.
    pub misprediction_window: u32,
    /// Quanta the first fallback holds the maximum frequency; each further
    /// engagement doubles the hold.
    pub base_backoff: u32,
    /// Upper bound on the fallback hold.
    pub max_backoff: u32,
}

impl Default for HardeningConfig {
    fn default() -> Self {
        HardeningConfig {
            max_plausible_slowdown: depburst::MAX_PLAUSIBLE_SLOWDOWN,
            misprediction_tolerance: 0.6,
            misprediction_window: 3,
            base_backoff: 4,
            max_backoff: 64,
        }
    }
}

/// Manager parameters (paper defaults: 5 ms quantum, hold-off 1).
#[derive(Debug, Clone, Copy)]
pub struct ManagerConfig {
    /// Maximum tolerated slowdown vs. always-max-frequency (0.05 = 5%).
    pub tolerable_slowdown: f64,
    /// Scheduling quantum.
    pub quantum: TimeDelta,
    /// Quanta to wait between frequency decisions.
    pub hold_off: u32,
    /// The chip power model (provides the DVFS ladder and V/f curve).
    pub power: PowerModel,
    /// Graceful-degradation machinery; `None` runs the paper's original
    /// algorithm unmodified.
    pub hardening: Option<HardeningConfig>,
}

impl ManagerConfig {
    /// Paper defaults with the given slowdown threshold (no hardening).
    #[must_use]
    pub fn with_threshold(tolerable_slowdown: f64) -> Self {
        ManagerConfig {
            tolerable_slowdown,
            quantum: TimeDelta::from_millis(5.0),
            hold_off: 1,
            power: PowerModel::haswell_22nm(),
            hardening: None,
        }
    }

    /// Paper defaults with default hardening enabled.
    #[must_use]
    pub fn hardened(tolerable_slowdown: f64) -> Self {
        ManagerConfig {
            hardening: Some(HardeningConfig::default()),
            ..Self::with_threshold(tolerable_slowdown)
        }
    }
}

/// What a managed run produced.
#[derive(Debug, Clone)]
pub struct ManagerReport {
    /// Wall-clock execution time under management.
    pub exec: TimeDelta,
    /// Total energy consumed (joules).
    pub energy_j: f64,
    /// Time spent at each frequency, for analysis.
    pub freq_time: Vec<(Freq, TimeDelta)>,
    /// Number of frequency decisions taken.
    pub decisions: u64,
    /// Number of decisions that changed the frequency.
    pub switches: u64,
    /// Energy (joules) recomputed from the machine's ground-truth core
    /// activity rather than the harvested (possibly faulted) counters.
    /// Equals [`Self::energy_j`] on a fault-free run.
    pub true_energy_j: f64,
    /// Predictions rejected by the hardened sanity gate.
    pub rejected_predictions: u64,
    /// Quanta whose identity prediction missed the observed duration.
    pub mispredicted_quanta: u64,
    /// Times the fallback-to-max-frequency state was engaged.
    pub fallback_engagements: u64,
    /// Quanta spent pinned at the maximum frequency by the fallback.
    pub fallback_quanta: u64,
    /// DVFS transitions the platform denied (tolerated when hardened).
    pub denied_transitions: u64,
}

impl ManagerReport {
    /// Time-weighted mean frequency (GHz).
    #[must_use]
    pub fn mean_ghz(&self) -> f64 {
        let total: f64 = self.freq_time.iter().map(|(_, t)| t.as_secs()).sum();
        if total == 0.0 {
            return 0.0;
        }
        self.freq_time
            .iter()
            .map(|(f, t)| f.ghz() * t.as_secs())
            .sum::<f64>()
            / total
    }
}

/// The quantum-based DVFS energy manager.
pub struct EnergyManager {
    config: ManagerConfig,
    predictor: Box<dyn DvfsPredictor>,
}

impl std::fmt::Debug for EnergyManager {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("EnergyManager")
            .field("config", &self.config)
            .field("predictor", &self.predictor.name())
            .finish()
    }
}

impl EnergyManager {
    /// Creates a manager around a performance predictor.
    #[must_use]
    pub fn new(config: ManagerConfig, predictor: Box<dyn DvfsPredictor>) -> Self {
        EnergyManager { config, predictor }
    }

    /// Runs the already-installed application on `machine` under
    /// management, to completion.
    ///
    /// # Errors
    /// Machine-level failures are surfaced as [`DepburstError::Machine`].
    /// A denied DVFS transition aborts the run with
    /// [`DepburstError::TransitionDenied`] unless hardening is enabled, in
    /// which case it is tolerated and counted.
    pub fn run(&self, machine: &mut Machine) -> Result<ManagerReport, DepburstError> {
        let ladder = *self.config.power.vf().ladder();
        let f_max = ladder.max();
        let cores = machine.config().cores;
        // Invariant monitoring (see `simx::invariants`) only records into
        // the machine's monitor — it never alters a decision — so the
        // DEPBURST_INVARIANTS=off path stays byte-identical.
        if machine.monitor().on(simx::Invariant::VfMonotonicity) {
            if let Some(issue) = self.config.power.vf().monotonicity_issue() {
                let at = machine.now().as_secs();
                machine
                    .monitor_mut()
                    .record(simx::Invariant::VfMonotonicity, at, issue);
            }
        }
        let mut denied_transitions = 0u64;
        match machine.set_frequency(f_max) {
            Ok(()) => {}
            Err(MachineError::TransitionDenied { .. }) if self.config.hardening.is_some() => {
                denied_transitions += 1;
            }
            Err(e) => return Err(e.into()),
        }

        let mut account = EnergyAccount::new();
        let mut true_account = EnergyAccount::new();
        let mut freq_time: Vec<(Freq, TimeDelta)> = Vec::new();
        let mut decisions = 0u64;
        let mut switches = 0u64;
        let mut rejected_predictions = 0u64;
        let mut mispredicted_quanta = 0u64;
        let mut fallback_engagements = 0u64;
        let mut fallback_quanta = 0u64;
        let mut streak = 0u32; // consecutive mispredicted quanta
        let mut fallback_hold = 0u32; // quanta left pinned at f_max
        let mut held = self.config.hold_off; // decide after the 1st quantum
        let start = machine.now();
        let mut prev_busy = total_busy(machine);

        loop {
            let interval_start = machine.now();
            let outcome = machine.run_for(self.config.quantum)?;
            let duration = machine.now().since(interval_start);
            let freq = machine.frequency();
            let trace = machine.harvest_trace();

            // Energy accounting: aggregate activity over the interval as
            // the (possibly faulted) harvest reports it.
            let busy: f64 = trace
                .epochs
                .iter()
                .flat_map(|e| e.threads.iter())
                .map(|s| s.counters.active.as_secs())
                .sum();
            let activity = if duration.as_secs() > 0.0 {
                (busy / (cores as f64 * duration.as_secs())).clamp(0.0, 1.0)
            } else {
                0.0
            };
            account.add(
                &self.config.power,
                freq,
                duration,
                &vec![activity; cores],
            );

            // Ground-truth energy from the machine's own busy-time ledger
            // (immune to counter faults; diverges from `account` exactly
            // when faults corrupt the observer's view).
            let busy_now = total_busy(machine);
            let true_activity = if duration.as_secs() > 0.0 {
                ((busy_now - prev_busy) / (cores as f64 * duration.as_secs())).clamp(0.0, 1.0)
            } else {
                0.0
            };
            prev_busy = busy_now;
            true_account.add(
                &self.config.power,
                freq,
                duration,
                &vec![true_activity; cores],
            );

            match freq_time.iter_mut().find(|(f, _)| *f == freq) {
                Some((_, t)) => *t += duration,
                None => freq_time.push((freq, duration)),
            }

            if let RunOutcome::Completed(end) = outcome {
                return Ok(ManagerReport {
                    exec: end.since(start),
                    energy_j: account.joules(),
                    freq_time,
                    decisions,
                    switches,
                    true_energy_j: true_account.joules(),
                    rejected_predictions,
                    mispredicted_quanta,
                    fallback_engagements,
                    fallback_quanta,
                    denied_transitions,
                });
            }

            // Misprediction detector: the identity prediction (the trace
            // re-predicted at its own base frequency) must reproduce the
            // observed duration; a sustained gap means the counters feeding
            // the predictor cannot be trusted.
            if let Some(h) = &self.config.hardening {
                if duration.as_secs() > 0.0 {
                    let identity = self.predictor.predict(&trace, freq).as_secs();
                    let bad = if identity.is_finite() && identity >= 0.0 {
                        (identity - duration.as_secs()).abs() / duration.as_secs()
                            > h.misprediction_tolerance
                    } else {
                        rejected_predictions += 1;
                        true
                    };
                    if bad {
                        mispredicted_quanta += 1;
                        streak += 1;
                    } else {
                        streak = 0;
                    }
                }
            }

            held += 1;
            if held < self.config.hold_off {
                continue;
            }
            held = 0;
            decisions += 1;
            let chosen = match &self.config.hardening {
                None => self.choose_frequency(&trace, f_max, &ladder),
                Some(h) => {
                    if fallback_hold == 0 && streak >= h.misprediction_window {
                        // Engage the fallback: pin the maximum frequency
                        // (never worse than 0% slowdown) for an
                        // exponentially growing hold before re-engaging.
                        fallback_engagements += 1;
                        let shift = (fallback_engagements - 1).min(16) as u32;
                        fallback_hold = u32::try_from(
                            (u64::from(h.base_backoff.max(1)) << shift)
                                .min(u64::from(h.max_backoff.max(1))),
                        )
                        .unwrap_or(h.max_backoff.max(1));
                        streak = 0;
                    }
                    if fallback_hold > 0 {
                        fallback_hold -= 1;
                        fallback_quanta += 1;
                        f_max
                    } else {
                        self.choose_frequency_gated(
                            &trace,
                            f_max,
                            &ladder,
                            h,
                            &mut rejected_predictions,
                        )
                    }
                }
            };
            if machine.monitor().on(simx::Invariant::LadderMembership) && !ladder.contains(chosen)
            {
                let at = machine.now().as_secs();
                machine.monitor_mut().record(
                    simx::Invariant::LadderMembership,
                    at,
                    format!(
                        "manager chose {} MHz, which is not a ladder operating point",
                        chosen.mhz()
                    ),
                );
            }
            if machine.monitor().on(simx::Invariant::PredictorBounds) {
                let p = self.predictor.predict(&trace, chosen).as_secs();
                if !p.is_finite() || p < 0.0 {
                    let at = machine.now().as_secs();
                    machine.monitor_mut().record(
                        simx::Invariant::PredictorBounds,
                        at,
                        format!(
                            "prediction at {} MHz is {p} s (want finite and non-negative)",
                            chosen.mhz()
                        ),
                    );
                }
            }
            if chosen != freq {
                match machine.set_frequency(chosen) {
                    Ok(()) => switches += 1,
                    Err(MachineError::TransitionDenied { at }) => {
                        if self.config.hardening.is_some() {
                            denied_transitions += 1;
                        } else {
                            return Err(DepburstError::TransitionDenied {
                                at_secs: at.as_secs(),
                            });
                        }
                    }
                    Err(e) => return Err(e.into()),
                }
            }
        }
    }

    /// The lowest frequency whose predicted slowdown vs. `f_max` is within
    /// the threshold (paper: of all states satisfying the constraint, the
    /// lowest frequency minimises energy).
    fn choose_frequency(
        &self,
        trace: &dvfs_trace::ExecutionTrace,
        f_max: Freq,
        ladder: &dvfs_trace::FreqLadder,
    ) -> Freq {
        let at_max = self.predictor.predict(trace, f_max).as_secs();
        if at_max <= 0.0 {
            return f_max;
        }
        let budget = at_max * (1.0 + self.config.tolerable_slowdown);
        for f in ladder.iter() {
            let predicted = self.predictor.predict(trace, f).as_secs();
            if predicted <= budget {
                return f;
            }
        }
        f_max
    }

    /// [`Self::choose_frequency`] with the hardened sanity gate: frequency
    /// states whose predictions are non-finite, negative, or implausibly
    /// scaled relative to `f_max` are skipped (and counted in `rejected`)
    /// instead of trusted. On honest predictions the gate never fires and
    /// the choice is identical to the ungated algorithm.
    fn choose_frequency_gated(
        &self,
        trace: &dvfs_trace::ExecutionTrace,
        f_max: Freq,
        ladder: &dvfs_trace::FreqLadder,
        hardening: &HardeningConfig,
        rejected: &mut u64,
    ) -> Freq {
        let at_max = self.predictor.predict(trace, f_max).as_secs();
        if !at_max.is_finite() || at_max <= 0.0 {
            // A zero prediction for a window in which wall time observably
            // passed means the counters vanished; a genuinely empty window
            // predicting zero is normal.
            if !at_max.is_finite() || trace.total > TimeDelta::ZERO {
                *rejected += 1;
            }
            return f_max;
        }
        let budget = at_max * (1.0 + self.config.tolerable_slowdown);
        for f in ladder.iter() {
            let predicted = self.predictor.predict(trace, f).as_secs();
            if !predicted.is_finite() || predicted < 0.0 {
                *rejected += 1;
                continue;
            }
            let ratio = predicted / at_max;
            if ratio > hardening.max_plausible_slowdown
                || ratio < 1.0 / hardening.max_plausible_slowdown
            {
                *rejected += 1;
                continue;
            }
            if predicted <= budget {
                return f;
            }
        }
        f_max
    }

    /// The time the manager's machine started from (for tests).
    #[must_use]
    pub fn config(&self) -> &ManagerConfig {
        &self.config
    }
}

/// Sum of the machine's ground-truth per-core busy time (seconds).
fn total_busy(machine: &Machine) -> f64 {
    machine.stats().core_busy.iter().map(|t| t.as_secs()).sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use dvfs_trace::{ExecutionTrace, ThreadRole};
    use simx::program::ScriptProgram;
    use simx::{Action, MachineConfig, SpawnRequest, WorkItem};

    /// A predictor that scales the whole trace perfectly (pure compute).
    #[derive(Debug)]
    struct PerfectScaling;

    impl DvfsPredictor for PerfectScaling {
        fn predict(&self, trace: &ExecutionTrace, target: Freq) -> TimeDelta {
            trace.total * trace.base.scaling_ratio_to(target)
        }
        fn name(&self) -> String {
            "PERFECT-SCALING".into()
        }
    }

    fn compute_machine() -> Machine {
        let mut mc = MachineConfig::haswell_quad();
        mc.initial_freq = Freq::from_ghz(1.0);
        let mut m = Machine::new(mc);
        m.spawn(SpawnRequest::new(
            "app",
            ThreadRole::Application,
            Box::new(ScriptProgram::new(vec![Action::Work(WorkItem::Compute {
                instructions: 200_000_000,
                ipc: 2.0,
            })])),
        ));
        m
    }

    #[test]
    fn pure_compute_under_perfect_predictor_respects_threshold() {
        // Baseline: always max frequency.
        let mut base = compute_machine();
        base.set_frequency(Freq::from_ghz(4.0)).expect("clean");
        let t_max = match base.run().expect("runs") {
            RunOutcome::Completed(t) => t.as_secs(),
            RunOutcome::DeadlineReached => unreachable!(),
        };

        let threshold = 0.10;
        let manager = EnergyManager::new(
            ManagerConfig::with_threshold(threshold),
            Box::new(PerfectScaling),
        );
        let mut m = compute_machine();
        let report = manager.run(&mut m).expect("managed run");
        let slowdown = report.exec.as_secs() / t_max - 1.0;
        assert!(
            slowdown <= threshold + 0.02,
            "slowdown {slowdown} must respect threshold {threshold}"
        );
        // For pure compute the manager should sit just under the bound
        // (frequency ≈ 4/1.1 ≈ 3.625 GHz).
        let mean = report.mean_ghz();
        assert!(
            (3.3..4.0).contains(&mean),
            "mean frequency {mean} GHz should sit near 4/(1+threshold)"
        );
        assert!(report.energy_j > 0.0);
        assert!(report.decisions > 0);
    }

    #[test]
    fn zero_threshold_stays_at_max() {
        let manager = EnergyManager::new(
            ManagerConfig::with_threshold(0.0),
            Box::new(PerfectScaling),
        );
        let mut m = compute_machine();
        let report = manager.run(&mut m).expect("managed run");
        let mean = report.mean_ghz();
        assert!(
            (mean - 4.0).abs() < 1e-9,
            "zero tolerance must pin max frequency, got {mean}"
        );
        assert_eq!(report.switches, 0);
    }

    #[test]
    fn hardening_is_bit_identical_without_faults() {
        let run_with = |config: ManagerConfig, inert_injector: bool| {
            let manager = EnergyManager::new(config, Box::new(PerfectScaling));
            let mut m = compute_machine();
            if inert_injector {
                m.install_faults(simx::FaultConfig::none(123));
            }
            manager.run(&mut m).expect("managed run")
        };
        let legacy = run_with(ManagerConfig::with_threshold(0.10), false);
        let hardened = run_with(ManagerConfig::hardened(0.10), false);
        let hardened_inert = run_with(ManagerConfig::hardened(0.10), true);
        for (label, r) in [("hardened", &hardened), ("hardened+inert", &hardened_inert)] {
            assert_eq!(legacy.exec, r.exec, "{label}: exec must be bit-identical");
            assert_eq!(
                legacy.energy_j.to_bits(),
                r.energy_j.to_bits(),
                "{label}: energy must be bit-identical"
            );
            assert_eq!(legacy.decisions, r.decisions, "{label}: decisions");
            assert_eq!(legacy.switches, r.switches, "{label}: switches");
            assert_eq!(legacy.freq_time, r.freq_time, "{label}: freq residency");
            assert_eq!(r.fallback_engagements, 0, "{label}: no fallback");
            assert_eq!(r.denied_transitions, 0, "{label}: no denials");
        }
        // Ground-truth energy agrees with observer energy on honest runs.
        assert!(
            (legacy.true_energy_j - legacy.energy_j).abs() / legacy.energy_j < 0.05,
            "true {} vs observed {}",
            legacy.true_energy_j,
            legacy.energy_j
        );
    }

    #[test]
    fn sustained_counter_dropout_triggers_fallback_to_max() {
        // A counter-driven predictor (DEP+BURST) fed fully dropped-out
        // harvests predicts ~0 for every window: the hardened manager must
        // reject those predictions, detect the sustained misprediction,
        // and pin the maximum frequency instead of scaling down blindly.
        let manager = EnergyManager::new(
            ManagerConfig::hardened(0.10),
            Box::new(depburst::Dep::dep_burst()),
        );
        let mut m = compute_machine();
        m.install_faults(simx::FaultConfig::single(
            simx::FaultClass::CounterDropout,
            1.0,
            9,
        ));
        let report = manager.run(&mut m).expect("hardened run survives dropout");
        assert!(
            (report.mean_ghz() - 4.0).abs() < 1e-9,
            "dropout must pin max frequency, got {} GHz",
            report.mean_ghz()
        );
        assert!(report.fallback_engagements >= 1, "fallback must engage");
        assert!(report.fallback_quanta >= 1);
        assert!(report.mispredicted_quanta >= 3);
        assert!(report.rejected_predictions >= 1);
        assert!(report.true_energy_j > 0.0);
    }

    #[test]
    fn unhardened_manager_aborts_on_denied_transition() {
        let manager = EnergyManager::new(
            ManagerConfig::with_threshold(0.10),
            Box::new(PerfectScaling),
        );
        let mut m = compute_machine();
        m.install_faults(simx::FaultConfig::single(
            simx::FaultClass::TransitionDenied,
            1.0,
            5,
        ));
        let err = manager.run(&mut m).expect_err("denial must surface");
        assert!(matches!(err, DepburstError::TransitionDenied { .. }));

        // The hardened manager tolerates the same fault and finishes.
        let manager = EnergyManager::new(
            ManagerConfig::hardened(0.10),
            Box::new(PerfectScaling),
        );
        let mut m = compute_machine();
        m.install_faults(simx::FaultConfig::single(
            simx::FaultClass::TransitionDenied,
            1.0,
            5,
        ));
        let report = manager.run(&mut m).expect("hardened run tolerates denial");
        assert!(report.denied_transitions >= 1);
    }
}
