//! The analytical chip power model (McPAT substitute).
//!
//! `P = Σ_cores [ C_eff · V² · f · activity + idle_dyn ] + leakage(V) +
//! uncore(V)`. Absolute watts are calibrated loosely to a 22 nm quad-core
//! Haswell (≈ 85 W fully busy at 4 GHz / 1.05 V); the experiments only use
//! power *ratios*, which depend on the dynamic/static split and the V/f
//! curve, not on the absolute scale.

use dvfs_trace::{Freq, TimeDelta};

use crate::vf::VfCurve;

/// Instantaneous chip power decomposition, in watts.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct PowerBreakdown {
    /// Switching power of busy cores.
    pub core_dynamic: f64,
    /// Leakage of all cores (voltage-dependent, frequency-independent).
    pub core_static: f64,
    /// Uncore/L3/memory-controller power.
    pub uncore: f64,
}

impl PowerBreakdown {
    /// Total watts.
    #[must_use]
    pub fn total(&self) -> f64 {
        self.core_dynamic + self.core_static + self.uncore
    }
}

/// The chip power model.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PowerModel {
    vf: VfCurve,
    /// Effective switched capacitance per core (farads).
    c_eff: f64,
    /// Leakage current coefficient per core: `P = k · V` (watts per volt).
    core_leak_per_volt: f64,
    /// Uncore power at nominal voltage: `P = k · V` (watts per volt).
    uncore_per_volt: f64,
}

impl PowerModel {
    /// The default 22 nm quad-core model. At 4 GHz / 1.05 V, fully busy:
    /// ≈ 62 W dynamic + 27 W core leakage + 10 W uncore ≈ 99 W — a ~62/38
    /// dynamic/static split (22 nm leakage is substantial in McPAT).
    #[must_use]
    pub fn haswell_22nm() -> Self {
        PowerModel {
            vf: VfCurve::haswell(),
            c_eff: 3.5e-9,
            core_leak_per_volt: 6.5,
            uncore_per_volt: 9.5,
        }
    }

    /// The V/f curve in use.
    #[must_use]
    pub fn vf(&self) -> &VfCurve {
        &self.vf
    }

    /// Chip power at `freq` with the given per-core activity factors
    /// (0 = idle, 1 = fully busy).
    #[must_use]
    pub fn power(&self, freq: Freq, core_activity: &[f64]) -> PowerBreakdown {
        let v = self.vf.voltage(freq);
        let dyn_per_busy_core = self.c_eff * v * v * freq.hz();
        let core_dynamic: f64 = core_activity
            .iter()
            .map(|&a| dyn_per_busy_core * a.clamp(0.0, 1.0))
            .sum();
        PowerBreakdown {
            core_dynamic,
            core_static: self.core_leak_per_volt * v * core_activity.len() as f64,
            uncore: self.uncore_per_volt * v,
        }
    }

    /// Energy (joules) of an interval of `duration` at `freq` with the
    /// given mean per-core activity.
    #[must_use]
    pub fn energy(&self, freq: Freq, duration: TimeDelta, core_activity: &[f64]) -> f64 {
        self.power(freq, core_activity).total() * duration.as_secs()
    }

    /// Energy of a whole constant-frequency run. Power is linear in
    /// activity, so only the run's total busy (scheduled) core time
    /// matters, not its distribution over intervals.
    #[must_use]
    pub fn energy_of_run(
        &self,
        freq: Freq,
        exec: TimeDelta,
        total_busy: TimeDelta,
        cores: usize,
    ) -> f64 {
        let idle = self.power(freq, &vec![0.0; cores]).total();
        let v = self.vf.voltage(freq);
        let dyn_rate = self.c_eff * v * v * freq.hz();
        idle * exec.as_secs() + dyn_rate * total_busy.as_secs()
    }

    /// Energy of a run with *per-core* frequencies (the per-core DVFS
    /// extension): each core contributes its own leakage and dynamic
    /// energy; the uncore runs at the fastest core's voltage.
    #[must_use]
    pub fn energy_of_heterogeneous_run(
        &self,
        core_freqs: &[Freq],
        exec: TimeDelta,
        core_busy: &[TimeDelta],
    ) -> f64 {
        assert_eq!(core_freqs.len(), core_busy.len());
        let mut joules = 0.0;
        let mut v_max: f64 = 0.0;
        for (f, busy) in core_freqs.iter().zip(core_busy) {
            let v = self.vf.voltage(*f);
            v_max = v_max.max(v);
            let dyn_rate = self.c_eff * v * v * f.hz();
            joules += self.core_leak_per_volt * v * exec.as_secs();
            joules += dyn_rate * busy.as_secs();
        }
        joules + self.uncore_per_volt * v_max * exec.as_secs()
    }
}

/// Accumulates energy over a run's intervals.
#[derive(Debug, Clone, Default)]
pub struct EnergyAccount {
    joules: f64,
    elapsed: TimeDelta,
}

impl EnergyAccount {
    /// An empty account.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds one interval.
    pub fn add(&mut self, model: &PowerModel, freq: Freq, duration: TimeDelta, activity: &[f64]) {
        self.joules += model.energy(freq, duration, activity);
        self.elapsed += duration;
    }

    /// Total joules so far.
    #[must_use]
    pub fn joules(&self) -> f64 {
        self.joules
    }

    /// Total time accounted.
    #[must_use]
    pub fn elapsed(&self) -> TimeDelta {
        self.elapsed
    }

    /// Mean power (watts).
    #[must_use]
    pub fn mean_power(&self) -> f64 {
        if self.elapsed.as_secs() > 0.0 {
            self.joules / self.elapsed.as_secs()
        } else {
            0.0
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn busy_chip_at_4ghz_is_haswell_class() {
        let m = PowerModel::haswell_22nm();
        let p = m.power(Freq::from_ghz(4.0), &[1.0; 4]).total();
        assert!((60.0..110.0).contains(&p), "got {p} W");
    }

    #[test]
    fn power_decreases_with_frequency_and_activity() {
        let m = PowerModel::haswell_22nm();
        let hi = m.power(Freq::from_ghz(4.0), &[1.0; 4]).total();
        let lo = m.power(Freq::from_ghz(2.0), &[1.0; 4]).total();
        assert!(lo < 0.6 * hi, "V² f scaling should bite: {lo} vs {hi}");
        let idle = m.power(Freq::from_ghz(4.0), &[0.0; 4]).total();
        assert!(idle < 0.45 * hi, "idle power is mostly static: {idle}");
        assert!(idle > 0.0);
    }

    #[test]
    fn energy_per_op_favours_lower_frequency_for_compute() {
        // A fixed amount of compute: T ∝ 1/f; E = P·T.
        let m = PowerModel::haswell_22nm();
        let e = |ghz: f64| {
            m.energy(
                Freq::from_ghz(ghz),
                TimeDelta::from_secs(1.0 / ghz),
                &[1.0; 4],
            )
        };
        // Dynamic energy ∝ V² falls with f, but leakage time rises: the
        // curve must not be monotone all the way down.
        let e4 = e(4.0);
        let e3 = e(3.0);
        let e1 = e(1.0);
        assert!(e3 < e4, "mid frequency should beat max: {e3} vs {e4}");
        assert!(
            e1 > 0.5 * e4,
            "leakage must punish the lowest frequency: {e1} vs {e4}"
        );
    }

    #[test]
    fn account_accumulates() {
        let m = PowerModel::haswell_22nm();
        let mut acc = EnergyAccount::new();
        acc.add(
            &m,
            Freq::from_ghz(4.0),
            TimeDelta::from_millis(10.0),
            &[1.0; 4],
        );
        acc.add(
            &m,
            Freq::from_ghz(1.0),
            TimeDelta::from_millis(10.0),
            &[1.0; 4],
        );
        assert!(acc.joules() > 0.0);
        assert!((acc.elapsed().as_millis() - 20.0).abs() < 1e-9);
        assert!(acc.mean_power() > 0.0);
    }
}
