//! The static-optimal oracle (paper §VI-B, Fig. 7).
//!
//! Static-optimal is determined by "running the application multiple
//! times and selecting the optimal frequency that minimizes energy
//! consumption across the entire run" — an oracle, because it uses the
//! very runs it is judged on. The comparison is made at the same slowdown
//! budget the dynamic manager honours.

use depburst_core::DepburstError;
use dvfs_trace::{Freq, TimeDelta};

/// One constant-frequency run of the sweep.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StaticPoint {
    /// The fixed frequency of the run.
    pub freq: Freq,
    /// Measured execution time.
    pub exec: TimeDelta,
    /// Measured energy (joules).
    pub energy_j: f64,
}

/// A full sweep over the DVFS ladder.
#[derive(Debug, Clone, Default)]
pub struct StaticSweep {
    /// The sweep's points, any order.
    pub points: Vec<StaticPoint>,
}

impl StaticSweep {
    /// The point at the highest frequency (the baseline the paper
    /// normalises energy savings to).
    #[must_use]
    pub fn baseline(&self) -> Option<&StaticPoint> {
        self.points.iter().max_by(|a, b| a.freq.cmp(&b.freq))
    }
}

/// Picks the static-optimal point: minimum energy among points whose
/// measured slowdown vs. the maximum-frequency baseline is within
/// `max_slowdown` (`None` = unconstrained).
#[must_use]
pub fn static_optimal(sweep: &StaticSweep, max_slowdown: Option<f64>) -> Option<&StaticPoint> {
    let base = sweep.baseline()?;
    sweep
        .points
        .iter()
        .filter(|p| match max_slowdown {
            Some(bound) => {
                p.exec.as_secs() / base.exec.as_secs() - 1.0 <= bound + 1e-9
            }
            None => true,
        })
        .min_by(|a, b| a.energy_j.total_cmp(&b.energy_j))
}

/// Like [`static_optimal`], but rejects sweeps containing non-finite
/// measurements (a faulted run can report NaN or infinite energy) instead
/// of silently ranking them.
///
/// # Errors
/// [`DepburstError::NonFiniteEnergy`] naming the offending frequency.
pub fn try_static_optimal(
    sweep: &StaticSweep,
    max_slowdown: Option<f64>,
) -> Result<Option<&StaticPoint>, DepburstError> {
    for p in &sweep.points {
        if !p.energy_j.is_finite() || !p.exec.as_secs().is_finite() {
            return Err(DepburstError::NonFiniteEnergy {
                freq_mhz: p.freq.mhz(),
            });
        }
    }
    Ok(static_optimal(sweep, max_slowdown))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn point(ghz: f64, exec_ms: f64, energy: f64) -> StaticPoint {
        StaticPoint {
            freq: Freq::from_ghz(ghz),
            exec: TimeDelta::from_millis(exec_ms),
            energy_j: energy,
        }
    }

    fn sweep() -> StaticSweep {
        StaticSweep {
            points: vec![
                point(1.0, 250.0, 9.0),
                point(2.0, 140.0, 7.0),
                point(3.0, 110.0, 8.0),
                point(4.0, 100.0, 10.0),
            ],
        }
    }

    #[test]
    fn baseline_is_max_frequency() {
        let s = sweep();
        assert_eq!(s.baseline().expect("nonempty").freq, Freq::from_ghz(4.0));
    }

    #[test]
    fn unconstrained_picks_global_minimum() {
        let s = sweep();
        let best = static_optimal(&s, None).expect("found");
        assert_eq!(best.freq, Freq::from_ghz(2.0));
    }

    #[test]
    fn slowdown_bound_filters() {
        let s = sweep();
        // 10% budget: only 4 GHz (0%) and 3 GHz (10%) qualify.
        let best = static_optimal(&s, Some(0.10)).expect("found");
        assert_eq!(best.freq, Freq::from_ghz(3.0));
        // 0% budget: only the baseline itself.
        let best = static_optimal(&s, Some(0.0)).expect("found");
        assert_eq!(best.freq, Freq::from_ghz(4.0));
    }

    #[test]
    fn empty_sweep_yields_none() {
        assert!(static_optimal(&StaticSweep::default(), None).is_none());
    }

    #[test]
    fn try_variant_rejects_non_finite_measurements() {
        let mut s = sweep();
        let ok = try_static_optimal(&s, None).expect("finite sweep");
        assert_eq!(ok.expect("found").freq, Freq::from_ghz(2.0));

        s.points.push(point(1.5, 180.0, f64::NAN));
        let err = try_static_optimal(&s, None).expect_err("NaN energy");
        assert_eq!(
            err,
            DepburstError::NonFiniteEnergy {
                freq_mhz: Freq::from_ghz(1.5).mhz()
            }
        );
        // The infallible variant still returns a deterministic answer
        // (total_cmp ranks NaN above every finite energy).
        let best = static_optimal(&s, None).expect("found");
        assert_eq!(best.freq, Freq::from_ghz(2.0));
    }
}
