//! Energy-efficiency metrics: energy, EDP, ED²P.
//!
//! The paper's manager minimises energy under a performance bound; the
//! wider literature also compares operating points by energy-delay
//! product (EDP) and energy-delay-squared (ED²P), which fold performance
//! into the objective instead of constraining it. These helpers make the
//! static sweep reusable for those objectives.

use dvfs_trace::TimeDelta;

/// An operating point's efficiency figures.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Efficiency {
    /// Energy in joules.
    pub energy_j: f64,
    /// Execution time.
    pub exec: TimeDelta,
}

impl Efficiency {
    /// Creates the figures.
    #[must_use]
    pub fn new(energy_j: f64, exec: TimeDelta) -> Self {
        Efficiency { energy_j, exec }
    }

    /// Energy-delay product (J·s).
    #[must_use]
    pub fn edp(&self) -> f64 {
        self.energy_j * self.exec.as_secs()
    }

    /// Energy-delay-squared product (J·s²).
    #[must_use]
    pub fn ed2p(&self) -> f64 {
        self.energy_j * self.exec.as_secs() * self.exec.as_secs()
    }
}

/// What a frequency-selection policy optimises.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Objective {
    /// Minimum energy subject to a slowdown bound vs. the fastest point
    /// (the paper's §VI objective).
    EnergyWithSlowdownBound(f64),
    /// Minimum energy-delay product, unconstrained.
    MinEdp,
    /// Minimum energy-delay-squared product, unconstrained.
    MinEd2p,
}

/// Picks the best point of a sweep under an objective. Points are
/// `(point, efficiency)` pairs; `baseline_exec` is the fastest point's
/// execution time (for the slowdown bound).
pub fn select_best<'a, T>(
    points: impl IntoIterator<Item = (&'a T, Efficiency)>,
    baseline_exec: TimeDelta,
    objective: Objective,
) -> Option<&'a T> {
    let mut best: Option<(&T, f64)> = None;
    for (p, eff) in points {
        let score = match objective {
            Objective::EnergyWithSlowdownBound(bound) => {
                let slowdown = eff.exec.as_secs() / baseline_exec.as_secs() - 1.0;
                if slowdown > bound + 1e-9 {
                    continue;
                }
                eff.energy_j
            }
            Objective::MinEdp => eff.edp(),
            Objective::MinEd2p => eff.ed2p(),
        };
        match best {
            Some((_, s)) if s <= score => {}
            _ => best = Some((p, score)),
        }
    }
    best.map(|(p, _)| p)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn edp_and_ed2p() {
        let e = Efficiency::new(10.0, TimeDelta::from_secs(2.0));
        assert!((e.edp() - 20.0).abs() < 1e-12);
        assert!((e.ed2p() - 40.0).abs() < 1e-12);
    }

    #[test]
    fn objectives_pick_different_points() {
        // Three points: fast/hungry, balanced, slow/frugal.
        let labels = ["fast", "mid", "slow"];
        let effs = [
            Efficiency::new(10.0, TimeDelta::from_secs(1.0)),
            Efficiency::new(7.0, TimeDelta::from_secs(1.3)),
            Efficiency::new(6.0, TimeDelta::from_secs(2.5)),
        ];
        let base = TimeDelta::from_secs(1.0);
        let pairs = || labels.iter().zip(effs.iter().copied());

        // 10% bound: only "fast" qualifies.
        let pick = select_best(pairs(), base, Objective::EnergyWithSlowdownBound(0.10));
        assert_eq!(pick, Some(&"fast"));
        // 35% bound: "mid" wins on energy.
        let pick = select_best(pairs(), base, Objective::EnergyWithSlowdownBound(0.35));
        assert_eq!(pick, Some(&"mid"));
        // EDP: fast 10, mid 9.1, slow 15 -> mid.
        let pick = select_best(pairs(), base, Objective::MinEdp);
        assert_eq!(pick, Some(&"mid"));
        // ED2P: fast 10, mid 11.8, slow 37.5 -> fast.
        let pick = select_best(pairs(), base, Objective::MinEd2p);
        assert_eq!(pick, Some(&"fast"));
    }

    #[test]
    fn empty_sweep_selects_nothing() {
        let none: Vec<(&str, Efficiency)> = vec![];
        assert_eq!(
            select_best(
                none.iter().map(|(l, e)| (l, *e)),
                TimeDelta::from_secs(1.0),
                Objective::MinEdp
            ),
            None
        );
    }
}
