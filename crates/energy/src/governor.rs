//! Fleet governor: central frequency allocation under a global power
//! budget, the per-machine local fallback, and the partition-tolerant
//! **degradation ladder**.
//!
//! The ROADMAP's fleet-scale service has one central DVFS governor
//! allocating frequencies to many machines. A central allocator is only
//! production-grade if each machine degrades gracefully when the fleet
//! misbehaves, so control authority forms a three-rung ladder:
//!
//! 1. [`GovernorMode::Central`] — the machine runs whatever frequency the
//!    central governor allocated from the global budget;
//! 2. [`GovernorMode::LocalDepBurst`] — on partition or sustained
//!    telemetry loss, the machine falls back to a local DEP+BURST-style
//!    governor ([`LocalGovernor`]): lowest ladder frequency within a
//!    tolerable predicted slowdown, the paper's §VI policy applied to the
//!    machine's own characterization (the Pac-Sim framing: a cheap local
//!    model stands in when full information is unavailable);
//! 3. [`GovernorMode::FallbackMax`] — on continued telemetry loss (or a
//!    crash restart) the machine pins its ladder maximum, the PR 1
//!    hardened fallback: always safe for latency, never for energy.
//!
//! Rejoin is **hysteretic**: each climb back up requires a full window of
//! confirmed-healthy rounds ([`DegradationConfig::rejoin_threshold`]) and
//! moves exactly one rung, so a flapping link cannot oscillate a machine
//! between central and fallback control. [`DegradationLadder`] is a pure
//! state machine over `(reachable, telemetry_ok)` observations — no
//! randomness, no clocks — which is what makes failover sequences a pure
//! function of the chaos schedule and lets
//! `simx::Invariant::RejoinMonotonicity` check every recorded transition.

use core::fmt;

use dvfs_trace::{Freq, FreqLadder};

use crate::power::PowerModel;

/// Who controls a machine's frequency right now (the ladder rung).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum GovernorMode {
    /// The central governor's allocation applies.
    Central,
    /// The machine self-governs with a local DEP+BURST policy.
    LocalDepBurst,
    /// The machine pins its maximum frequency (hardened fallback).
    FallbackMax,
}

impl GovernorMode {
    /// Ladder rung height: higher is more centralized.
    #[must_use]
    pub fn rung(self) -> u8 {
        match self {
            GovernorMode::FallbackMax => 0,
            GovernorMode::LocalDepBurst => 1,
            GovernorMode::Central => 2,
        }
    }

    /// Stable kebab-case name used in reports and transition logs.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            GovernorMode::Central => "central",
            GovernorMode::LocalDepBurst => "local-depburst",
            GovernorMode::FallbackMax => "fallback-max",
        }
    }

    /// The rung one step toward central control, if any.
    #[must_use]
    pub fn promoted(self) -> Option<GovernorMode> {
        match self {
            GovernorMode::FallbackMax => Some(GovernorMode::LocalDepBurst),
            GovernorMode::LocalDepBurst => Some(GovernorMode::Central),
            GovernorMode::Central => None,
        }
    }
}

impl fmt::Display for GovernorMode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Streak thresholds of the degradation ladder, in rounds.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DegradationConfig {
    /// Consecutive governor-unreachable rounds before leaving
    /// [`GovernorMode::Central`].
    pub partition_tolerance: u32,
    /// Consecutive telemetry-less rounds before dropping one rung
    /// (central control and the local predictor both starve without
    /// counter harvests).
    pub loss_tolerance: u32,
    /// Consecutive fully-healthy rounds required per one-rung climb back
    /// up (the hysteresis window).
    pub rejoin_threshold: u32,
}

impl Default for DegradationConfig {
    fn default() -> Self {
        DegradationConfig {
            partition_tolerance: 2,
            loss_tolerance: 4,
            rejoin_threshold: 3,
        }
    }
}

/// One recorded mode change of a machine's degradation ladder.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Transition {
    /// Fleet round the transition happened in.
    pub round: u64,
    /// Mode before.
    pub from: GovernorMode,
    /// Mode after.
    pub to: GovernorMode,
    /// Why (static label: "partition", "telemetry-loss", "rejoin",
    /// "crash-restart", ...).
    pub reason: &'static str,
}

impl fmt::Display for Transition {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "r{} {}→{} ({})",
            self.round,
            self.from.name(),
            self.to.name(),
            self.reason
        )
    }
}

/// The per-machine degradation state machine. Deterministic: the mode
/// sequence is a pure function of the observation sequence.
#[derive(Debug, Clone)]
pub struct DegradationLadder {
    config: DegradationConfig,
    mode: GovernorMode,
    unreachable_streak: u32,
    loss_streak: u32,
    healthy_streak: u32,
    transitions: Vec<Transition>,
}

impl DegradationLadder {
    /// A fresh ladder, starting under central control.
    #[must_use]
    pub fn new(config: DegradationConfig) -> Self {
        DegradationLadder {
            config,
            mode: GovernorMode::Central,
            unreachable_streak: 0,
            loss_streak: 0,
            healthy_streak: 0,
            transitions: Vec::new(),
        }
    }

    /// The current mode.
    #[must_use]
    pub fn mode(&self) -> GovernorMode {
        self.mode
    }

    /// Every recorded transition, in round order.
    #[must_use]
    pub fn transitions(&self) -> &[Transition] {
        &self.transitions
    }

    /// Feeds one round's health observation and returns the mode that
    /// governs this round. `governor_reachable` is the control link,
    /// `telemetry_ok` the counter-harvest path. Demotions move at most
    /// one rung per round; promotions require a full
    /// [`DegradationConfig::rejoin_threshold`] healthy window each.
    pub fn observe(&mut self, round: u64, governor_reachable: bool, telemetry_ok: bool) -> GovernorMode {
        if governor_reachable {
            self.unreachable_streak = 0;
        } else {
            self.unreachable_streak += 1;
        }
        if telemetry_ok {
            self.loss_streak = 0;
        } else {
            self.loss_streak += 1;
        }
        if governor_reachable && telemetry_ok {
            self.healthy_streak += 1;
        } else {
            self.healthy_streak = 0;
        }

        match self.mode {
            GovernorMode::Central => {
                if self.unreachable_streak >= self.config.partition_tolerance {
                    self.shift(round, GovernorMode::LocalDepBurst, "partition");
                } else if self.loss_streak >= self.config.loss_tolerance {
                    self.shift(round, GovernorMode::LocalDepBurst, "telemetry-loss");
                }
            }
            GovernorMode::LocalDepBurst => {
                if self.loss_streak >= self.config.loss_tolerance.saturating_mul(2) {
                    self.shift(round, GovernorMode::FallbackMax, "telemetry-loss");
                }
            }
            GovernorMode::FallbackMax => {}
        }

        if self.healthy_streak >= self.config.rejoin_threshold {
            if let Some(up) = self.mode.promoted() {
                self.shift(round, up, "rejoin");
                // Each further rung needs its own full healthy window.
                self.healthy_streak = 0;
            }
        }
        self.mode
    }

    /// Drops straight to [`GovernorMode::FallbackMax`] (a crash restart
    /// reboots into the hardened fallback, whatever the mode was).
    pub fn force_fallback(&mut self, round: u64, reason: &'static str) {
        if self.mode != GovernorMode::FallbackMax {
            self.shift(round, GovernorMode::FallbackMax, reason);
        }
        self.unreachable_streak = 0;
        self.loss_streak = 0;
        self.healthy_streak = 0;
    }

    fn shift(&mut self, round: u64, to: GovernorMode, reason: &'static str) {
        self.transitions.push(Transition {
            round,
            from: self.mode,
            to,
            reason,
        });
        self.mode = to;
    }

    /// Checks the recorded transition log for rejoin-monotonicity: rounds
    /// non-decreasing, every transition an actual change, and every
    /// upward move exactly one rung. Feeds
    /// `simx::Invariant::RejoinMonotonicity`.
    #[must_use]
    pub fn monotonicity_issue(&self) -> Option<String> {
        let mut prev_round = 0u64;
        for t in &self.transitions {
            if t.round < prev_round {
                return Some(format!("transition log out of order at {t}"));
            }
            prev_round = t.round;
            if t.from == t.to {
                return Some(format!("self-transition at {t}"));
            }
            if t.to.rung() > t.from.rung() && t.to.rung() - t.from.rung() != 1 {
                return Some(format!("multi-rung rejoin at {t}"));
            }
        }
        None
    }
}

/// Which fleet-level frequency policy governs the run (CLI `--policy`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum GovernorPolicy {
    /// Central allocation from the true characterization (upper bound:
    /// perfect models, perfect telemetry when reachable).
    Oracle,
    /// Central allocation from DEP+BURST-style telemetry (stale or lossy
    /// under chaos — the realistic operating point).
    DepBurst,
    /// No central control at all: every machine pins its ladder maximum
    /// (the naive, budget-oblivious baseline).
    NaiveStatic,
}

impl GovernorPolicy {
    /// Stable CLI spelling.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            GovernorPolicy::Oracle => "oracle",
            GovernorPolicy::DepBurst => "depburst",
            GovernorPolicy::NaiveStatic => "naive",
        }
    }

    /// Parses a [`GovernorPolicy::name`].
    #[must_use]
    pub fn from_name(name: &str) -> Option<Self> {
        [
            GovernorPolicy::Oracle,
            GovernorPolicy::DepBurst,
            GovernorPolicy::NaiveStatic,
        ]
        .into_iter()
        .find(|p| p.name() == name)
    }
}

impl fmt::Display for GovernorPolicy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// What the central governor knows about one reachable machine: its V/f
/// ladder and a two-component service-time characterization
/// `s(f) = scaling_s / f_ghz + fixed_s` (frequency-scaling work over
/// memory/GC work that does not scale — the DEP+BURST decomposition
/// collapsed to request granularity).
#[derive(Debug, Clone, Copy)]
pub struct MachineView<'a> {
    /// Fleet-wide machine id (allocation order tiebreaker).
    pub id: usize,
    /// The machine's own V/f ladder (heterogeneous across the fleet).
    pub ladder: &'a FreqLadder,
    /// Frequency-scaling service seconds, normalized to 1 GHz.
    pub scaling_s: f64,
    /// Non-scaling service seconds.
    pub fixed_s: f64,
    /// Core count (drives the machine's power estimate).
    pub cores: usize,
}

impl MachineView<'_> {
    /// Predicted per-request service time at `freq`, seconds.
    #[must_use]
    pub fn service_time(&self, freq: Freq) -> f64 {
        self.scaling_s / freq.ghz() + self.fixed_s
    }
}

/// One central allocation round's outcome.
#[derive(Debug, Clone, PartialEq)]
pub struct Allocation {
    /// Chosen frequency per view, parallel to the input slice.
    pub freqs: Vec<Freq>,
    /// Estimated fleet power of the chosen frequencies, watts.
    pub power_w: f64,
    /// The budget slice this allocation had to fit, watts.
    pub available_w: f64,
}

/// The central DVFS governor: greedy latency-levelling allocation under a
/// global power budget.
#[derive(Debug, Clone, Copy)]
pub struct CentralGovernor {
    /// Whole-fleet power budget, watts.
    pub budget_w: f64,
}

impl CentralGovernor {
    /// A governor with the given fleet budget.
    #[must_use]
    pub fn new(budget_w: f64) -> Self {
        CentralGovernor { budget_w }
    }

    /// Allocates frequencies to the reachable machines in `views`.
    ///
    /// Unreachable machines (self-governing on lower ladder rungs) keep a
    /// pro-rata share of the budget: with `fleet_machines` total, the
    /// reachable set fits inside `budget · |views| / fleet_machines`.
    ///
    /// Greedy water-filling: every machine starts at its ladder minimum;
    /// each step raises the machine with the worst predicted service time
    /// (ties broken by lower id) one ladder notch, if the power estimate
    /// still fits; machines whose next notch does not fit are frozen.
    /// Deterministic — no randomness, order fixed by (latency, id).
    #[must_use]
    pub fn allocate(&self, model: &PowerModel, views: &[MachineView<'_>], fleet_machines: usize) -> Allocation {
        let fleet = fleet_machines.max(views.len()).max(1);
        let available_w = self.budget_w * views.len() as f64 / fleet as f64;

        let ladders: Vec<Vec<Freq>> = views.iter().map(|v| v.ladder.iter().collect()).collect();
        let mut idx: Vec<usize> = vec![0; views.len()];
        let mut frozen: Vec<bool> = vec![false; views.len()];
        let power_of = |view: &MachineView<'_>, freq: Freq| {
            model.power(freq, &vec![1.0; view.cores.max(1)]).total()
        };
        let mut power_w: f64 = views
            .iter()
            .zip(&ladders)
            .map(|(v, l)| power_of(v, l[0]))
            .sum();

        loop {
            // The worst-latency machine that still has headroom.
            let mut pick: Option<(f64, usize)> = None;
            for (i, view) in views.iter().enumerate() {
                if frozen[i] || idx[i] + 1 >= ladders[i].len() {
                    continue;
                }
                let lat = view.service_time(ladders[i][idx[i]]);
                let better = match pick {
                    None => true,
                    Some((best, _)) => lat > best,
                };
                if better {
                    pick = Some((lat, i));
                }
            }
            let Some((_, i)) = pick else { break };
            let delta = power_of(&views[i], ladders[i][idx[i] + 1]) - power_of(&views[i], ladders[i][idx[i]]);
            if power_w + delta <= available_w {
                idx[i] += 1;
                power_w += delta;
            } else {
                frozen[i] = true;
            }
        }

        Allocation {
            freqs: idx.iter().zip(&ladders).map(|(&i, l)| l[i]).collect(),
            power_w,
            available_w,
        }
    }
}

/// The local DEP+BURST fallback governor: lowest ladder frequency whose
/// predicted slowdown vs. the ladder maximum stays within the bound
/// (paper §VI, applied to the machine's own characterization).
#[derive(Debug, Clone, Copy)]
pub struct LocalGovernor {
    /// Tolerable slowdown vs. the ladder maximum (e.g. `0.05` = 5%).
    pub slowdown_bound: f64,
}

impl LocalGovernor {
    /// A local governor with the given slowdown bound.
    #[must_use]
    pub fn new(slowdown_bound: f64) -> Self {
        LocalGovernor {
            slowdown_bound: slowdown_bound.max(0.0),
        }
    }

    /// Picks the frequency for one machine. Always a member of `ladder`.
    #[must_use]
    pub fn choose(&self, view: &MachineView<'_>) -> Freq {
        let max = view.ladder.max();
        let budget = view.service_time(max) * (1.0 + self.slowdown_bound);
        view.ladder
            .iter()
            .find(|&f| view.service_time(f) <= budget)
            .unwrap_or(max)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn obs(ladder: &mut DegradationLadder, rounds: &[(bool, bool)]) -> Vec<GovernorMode> {
        rounds
            .iter()
            .enumerate()
            .map(|(r, &(reach, tel))| ladder.observe(r as u64, reach, tel))
            .collect()
    }

    #[test]
    fn partition_demotes_to_local_after_tolerance() {
        let mut l = DegradationLadder::new(DegradationConfig::default());
        let modes = obs(&mut l, &[(true, true), (false, true), (false, true)]);
        assert_eq!(
            modes,
            vec![
                GovernorMode::Central,
                GovernorMode::Central,
                GovernorMode::LocalDepBurst
            ]
        );
        assert_eq!(l.transitions().len(), 1);
        assert_eq!(l.transitions()[0].reason, "partition");
    }

    #[test]
    fn sustained_loss_walks_the_whole_ladder_down() {
        let cfg = DegradationConfig {
            loss_tolerance: 2,
            ..DegradationConfig::default()
        };
        let mut l = DegradationLadder::new(cfg);
        let modes = obs(&mut l, &[(true, false); 5]);
        assert_eq!(modes[1], GovernorMode::LocalDepBurst, "loss demotes central");
        assert_eq!(
            *modes.last().unwrap(),
            GovernorMode::FallbackMax,
            "continued loss reaches the hardened fallback"
        );
        assert!(l.monotonicity_issue().is_none());
    }

    #[test]
    fn rejoin_is_hysteretic_one_rung_per_window() {
        let cfg = DegradationConfig {
            rejoin_threshold: 3,
            ..DegradationConfig::default()
        };
        let mut l = DegradationLadder::new(cfg);
        l.force_fallback(0, "crash-restart");
        assert_eq!(l.mode(), GovernorMode::FallbackMax);
        // Two healthy rounds are not enough; flapping resets the window.
        l.observe(1, true, true);
        l.observe(2, true, true);
        l.observe(3, false, true);
        assert_eq!(l.mode(), GovernorMode::FallbackMax);
        // A full window climbs exactly one rung...
        for r in 4..7 {
            l.observe(r, true, true);
        }
        assert_eq!(l.mode(), GovernorMode::LocalDepBurst);
        // ...and the next rung needs its own full window.
        l.observe(7, true, true);
        l.observe(8, true, true);
        assert_eq!(l.mode(), GovernorMode::LocalDepBurst);
        l.observe(9, true, true);
        assert_eq!(l.mode(), GovernorMode::Central);
        assert!(l.monotonicity_issue().is_none());
    }

    #[test]
    fn mode_sequence_is_a_pure_function_of_observations() {
        let pattern: Vec<(bool, bool)> = (0..40)
            .map(|r| (r % 7 != 0, r % 5 != 0))
            .collect();
        let mut a = DegradationLadder::new(DegradationConfig::default());
        let mut b = DegradationLadder::new(DegradationConfig::default());
        assert_eq!(obs(&mut a, &pattern), obs(&mut b, &pattern));
        assert_eq!(a.transitions(), b.transitions());
    }

    #[test]
    fn monotonicity_catches_a_forged_multi_rung_rejoin() {
        let mut l = DegradationLadder::new(DegradationConfig::default());
        l.transitions.push(Transition {
            round: 1,
            from: GovernorMode::FallbackMax,
            to: GovernorMode::Central,
            reason: "forged",
        });
        assert!(l.monotonicity_issue().unwrap().contains("multi-rung"));
    }

    fn ladder() -> FreqLadder {
        FreqLadder::paper_default()
    }

    #[test]
    fn allocation_respects_budget_and_ladders() {
        let model = PowerModel::haswell_22nm();
        let l = ladder();
        let views: Vec<MachineView<'_>> = (0..4)
            .map(|id| MachineView {
                id,
                ladder: &l,
                scaling_s: 0.8 + 0.1 * id as f64,
                fixed_s: 0.2,
                cores: 4,
            })
            .collect();
        let gov = CentralGovernor::new(200.0);
        let alloc = gov.allocate(&model, &views, 4);
        assert!(alloc.power_w <= alloc.available_w + 1e-9);
        for (f, v) in alloc.freqs.iter().zip(&views) {
            assert!(v.ladder.contains(*f), "{f:?} not on the ladder");
        }
        // The heaviest machine (largest scaling_s) gets at least as much
        // frequency as the lightest.
        assert!(alloc.freqs[3] >= alloc.freqs[0]);
    }

    #[test]
    fn huge_budget_pins_everyone_at_max_and_zero_budget_at_min() {
        let model = PowerModel::haswell_22nm();
        let l = ladder();
        let views: Vec<MachineView<'_>> = (0..3)
            .map(|id| MachineView {
                id,
                ladder: &l,
                scaling_s: 1.0,
                fixed_s: 0.1,
                cores: 4,
            })
            .collect();
        let rich = CentralGovernor::new(1e6).allocate(&model, &views, 3);
        assert!(rich.freqs.iter().all(|&f| f == l.max()));
        let poor = CentralGovernor::new(0.0).allocate(&model, &views, 3);
        assert!(poor.freqs.iter().all(|&f| f == l.min()));
    }

    #[test]
    fn unreachable_machines_reserve_their_budget_share() {
        let model = PowerModel::haswell_22nm();
        let l = ladder();
        let views = vec![MachineView {
            id: 0,
            ladder: &l,
            scaling_s: 1.0,
            fixed_s: 0.1,
            cores: 4,
        }];
        let gov = CentralGovernor::new(400.0);
        let alone = gov.allocate(&model, &views, 1);
        let shared = gov.allocate(&model, &views, 4);
        assert!((alone.available_w - 400.0).abs() < 1e-9);
        assert!((shared.available_w - 100.0).abs() < 1e-9);
        assert!(shared.freqs[0] <= alone.freqs[0]);
    }

    #[test]
    fn local_governor_honors_the_slowdown_bound_on_the_ladder() {
        let l = ladder();
        let view = MachineView {
            id: 0,
            ladder: &l,
            scaling_s: 0.9,
            fixed_s: 0.3,
            cores: 4,
        };
        let f = LocalGovernor::new(0.10).choose(&view);
        assert!(l.contains(f));
        let bound = view.service_time(l.max()) * 1.10;
        assert!(view.service_time(f) <= bound + 1e-12);
        // A zero bound forces the maximum.
        assert_eq!(LocalGovernor::new(0.0).choose(&view), l.max());
    }
}
