//! Fleet governor: central frequency allocation under a global power
//! budget, the per-machine local fallback, and the partition-tolerant
//! **degradation ladder**.
//!
//! The ROADMAP's fleet-scale service has one central DVFS governor
//! allocating frequencies to many machines. A central allocator is only
//! production-grade if each machine degrades gracefully when the fleet
//! misbehaves, so control authority forms a three-rung ladder:
//!
//! 1. [`GovernorMode::Central`] — the machine runs whatever frequency the
//!    central governor allocated from the global budget;
//! 2. [`GovernorMode::LocalDepBurst`] — on partition or sustained
//!    telemetry loss, the machine falls back to a local DEP+BURST-style
//!    governor ([`LocalGovernor`]): lowest ladder frequency within a
//!    tolerable predicted slowdown, the paper's §VI policy applied to the
//!    machine's own characterization (the Pac-Sim framing: a cheap local
//!    model stands in when full information is unavailable);
//! 3. [`GovernorMode::FallbackMax`] — on continued telemetry loss (or a
//!    crash restart) the machine pins its ladder maximum, the PR 1
//!    hardened fallback: always safe for latency, never for energy.
//!
//! Rejoin is **hysteretic**: each climb back up requires a full window of
//! confirmed-healthy rounds ([`DegradationConfig::rejoin_threshold`]) and
//! moves exactly one rung, so a flapping link cannot oscillate a machine
//! between central and fallback control. [`DegradationLadder`] is a pure
//! state machine over `(reachable, telemetry_ok)` observations — no
//! randomness, no clocks — which is what makes failover sequences a pure
//! function of the chaos schedule and lets
//! `simx::Invariant::RejoinMonotonicity` check every recorded transition.

use core::fmt;

use dvfs_trace::{Freq, FreqLadder};

use crate::power::PowerModel;

/// Who controls a machine's frequency right now (the ladder rung).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum GovernorMode {
    /// The central governor's allocation applies.
    Central,
    /// The machine self-governs with a local DEP+BURST policy.
    LocalDepBurst,
    /// The machine pins its maximum frequency (hardened fallback).
    FallbackMax,
}

impl GovernorMode {
    /// Ladder rung height: higher is more centralized.
    #[must_use]
    pub fn rung(self) -> u8 {
        match self {
            GovernorMode::FallbackMax => 0,
            GovernorMode::LocalDepBurst => 1,
            GovernorMode::Central => 2,
        }
    }

    /// Stable kebab-case name used in reports and transition logs.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            GovernorMode::Central => "central",
            GovernorMode::LocalDepBurst => "local-depburst",
            GovernorMode::FallbackMax => "fallback-max",
        }
    }

    /// The rung one step toward central control, if any.
    #[must_use]
    pub fn promoted(self) -> Option<GovernorMode> {
        match self {
            GovernorMode::FallbackMax => Some(GovernorMode::LocalDepBurst),
            GovernorMode::LocalDepBurst => Some(GovernorMode::Central),
            GovernorMode::Central => None,
        }
    }
}

impl fmt::Display for GovernorMode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Streak thresholds of the degradation ladder, in rounds.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DegradationConfig {
    /// Consecutive governor-unreachable rounds before leaving
    /// [`GovernorMode::Central`].
    pub partition_tolerance: u32,
    /// Consecutive telemetry-less rounds before dropping one rung
    /// (central control and the local predictor both starve without
    /// counter harvests).
    pub loss_tolerance: u32,
    /// Consecutive fully-healthy rounds required per one-rung climb back
    /// up (the hysteresis window).
    pub rejoin_threshold: u32,
}

impl Default for DegradationConfig {
    fn default() -> Self {
        DegradationConfig {
            partition_tolerance: 2,
            loss_tolerance: 4,
            rejoin_threshold: 3,
        }
    }
}

/// One recorded mode change of a machine's degradation ladder.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Transition {
    /// Fleet round the transition happened in.
    pub round: u64,
    /// Mode before.
    pub from: GovernorMode,
    /// Mode after.
    pub to: GovernorMode,
    /// Why (static label: "partition", "telemetry-loss", "rejoin",
    /// "crash-restart", ...).
    pub reason: &'static str,
}

impl fmt::Display for Transition {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "r{} {}→{} ({})",
            self.round,
            self.from.name(),
            self.to.name(),
            self.reason
        )
    }
}

/// The per-machine degradation state machine. Deterministic: the mode
/// sequence is a pure function of the observation sequence.
#[derive(Debug, Clone)]
pub struct DegradationLadder {
    config: DegradationConfig,
    mode: GovernorMode,
    unreachable_streak: u32,
    loss_streak: u32,
    healthy_streak: u32,
    transitions: Vec<Transition>,
}

impl DegradationLadder {
    /// A fresh ladder, starting under central control.
    #[must_use]
    pub fn new(config: DegradationConfig) -> Self {
        DegradationLadder {
            config,
            mode: GovernorMode::Central,
            unreachable_streak: 0,
            loss_streak: 0,
            healthy_streak: 0,
            transitions: Vec::new(),
        }
    }

    /// The current mode.
    #[must_use]
    pub fn mode(&self) -> GovernorMode {
        self.mode
    }

    /// Every recorded transition, in round order.
    #[must_use]
    pub fn transitions(&self) -> &[Transition] {
        &self.transitions
    }

    /// Feeds one round's health observation and returns the mode that
    /// governs this round. `governor_reachable` is the control link,
    /// `telemetry_ok` the counter-harvest path. Demotions move at most
    /// one rung per round; promotions require a full
    /// [`DegradationConfig::rejoin_threshold`] healthy window each.
    pub fn observe(&mut self, round: u64, governor_reachable: bool, telemetry_ok: bool) -> GovernorMode {
        self.observe_health(round, governor_reachable, telemetry_ok, true)
    }

    /// [`DegradationLadder::observe`] with the thermal dimension: a round
    /// under emergency throttle (or worse) is `thermal_ok = false`. A
    /// thermally constrained machine is pinned at its V/f floor and
    /// cannot follow central allocations, so such rounds never count
    /// toward the rejoin window — but they do not demote either (the
    /// throttle ladder, not governor authority, is handling the machine).
    /// With `thermal_ok = true` this is exactly `observe`, so thermal-off
    /// fleets are bit-identical to pre-thermal ones.
    pub fn observe_health(
        &mut self,
        round: u64,
        governor_reachable: bool,
        telemetry_ok: bool,
        thermal_ok: bool,
    ) -> GovernorMode {
        if governor_reachable {
            self.unreachable_streak = 0;
        } else {
            self.unreachable_streak += 1;
        }
        if telemetry_ok {
            self.loss_streak = 0;
        } else {
            self.loss_streak += 1;
        }
        if governor_reachable && telemetry_ok && thermal_ok {
            self.healthy_streak += 1;
        } else {
            self.healthy_streak = 0;
        }

        match self.mode {
            GovernorMode::Central => {
                if self.unreachable_streak >= self.config.partition_tolerance {
                    self.shift(round, GovernorMode::LocalDepBurst, "partition");
                } else if self.loss_streak >= self.config.loss_tolerance {
                    self.shift(round, GovernorMode::LocalDepBurst, "telemetry-loss");
                }
            }
            GovernorMode::LocalDepBurst => {
                if self.loss_streak >= self.config.loss_tolerance.saturating_mul(2) {
                    self.shift(round, GovernorMode::FallbackMax, "telemetry-loss");
                }
            }
            GovernorMode::FallbackMax => {}
        }

        if self.healthy_streak >= self.config.rejoin_threshold {
            if let Some(up) = self.mode.promoted() {
                self.shift(round, up, "rejoin");
                // Each further rung needs its own full healthy window.
                self.healthy_streak = 0;
            }
        }
        self.mode
    }

    /// Drops straight to [`GovernorMode::FallbackMax`] (a crash restart
    /// reboots into the hardened fallback, whatever the mode was).
    pub fn force_fallback(&mut self, round: u64, reason: &'static str) {
        if self.mode != GovernorMode::FallbackMax {
            self.shift(round, GovernorMode::FallbackMax, reason);
        }
        self.unreachable_streak = 0;
        self.loss_streak = 0;
        self.healthy_streak = 0;
    }

    fn shift(&mut self, round: u64, to: GovernorMode, reason: &'static str) {
        self.transitions.push(Transition {
            round,
            from: self.mode,
            to,
            reason,
        });
        self.mode = to;
    }

    /// Checks the recorded transition log for rejoin-monotonicity: rounds
    /// non-decreasing, every transition an actual change, and every
    /// upward move exactly one rung. Feeds
    /// `simx::Invariant::RejoinMonotonicity`.
    #[must_use]
    pub fn monotonicity_issue(&self) -> Option<String> {
        let mut prev_round = 0u64;
        for t in &self.transitions {
            if t.round < prev_round {
                return Some(format!("transition log out of order at {t}"));
            }
            prev_round = t.round;
            if t.from == t.to {
                return Some(format!("self-transition at {t}"));
            }
            if t.to.rung() > t.from.rung() && t.to.rung() - t.from.rung() != 1 {
                return Some(format!("multi-rung rejoin at {t}"));
            }
        }
        None
    }
}

/// Which fleet-level frequency policy governs the run (CLI `--policy`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum GovernorPolicy {
    /// Central allocation from the true characterization (upper bound:
    /// perfect models, perfect telemetry when reachable).
    Oracle,
    /// Central allocation from DEP+BURST-style telemetry (stale or lossy
    /// under chaos — the realistic operating point).
    DepBurst,
    /// No central control at all: every machine pins its ladder maximum
    /// (the naive, budget-oblivious baseline).
    NaiveStatic,
}

impl GovernorPolicy {
    /// Stable CLI spelling.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            GovernorPolicy::Oracle => "oracle",
            GovernorPolicy::DepBurst => "depburst",
            GovernorPolicy::NaiveStatic => "naive",
        }
    }

    /// Parses a [`GovernorPolicy::name`].
    #[must_use]
    pub fn from_name(name: &str) -> Option<Self> {
        [
            GovernorPolicy::Oracle,
            GovernorPolicy::DepBurst,
            GovernorPolicy::NaiveStatic,
        ]
        .into_iter()
        .find(|p| p.name() == name)
    }
}

impl fmt::Display for GovernorPolicy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// What the central governor knows about one reachable machine: its V/f
/// ladder and a two-component service-time characterization
/// `s(f) = scaling_s / f_ghz + fixed_s` (frequency-scaling work over
/// memory/GC work that does not scale — the DEP+BURST decomposition
/// collapsed to request granularity).
#[derive(Debug, Clone, Copy)]
pub struct MachineView<'a> {
    /// Fleet-wide machine id (allocation order tiebreaker).
    pub id: usize,
    /// The machine's own V/f ladder (heterogeneous across the fleet).
    pub ladder: &'a FreqLadder,
    /// Frequency-scaling service seconds, normalized to 1 GHz.
    pub scaling_s: f64,
    /// Non-scaling service seconds.
    pub fixed_s: f64,
    /// Core count (drives the machine's power estimate).
    pub cores: usize,
}

impl MachineView<'_> {
    /// Predicted per-request service time at `freq`, seconds.
    #[must_use]
    pub fn service_time(&self, freq: Freq) -> f64 {
        self.scaling_s / freq.ghz() + self.fixed_s
    }
}

/// One central allocation round's outcome.
#[derive(Debug, Clone, PartialEq)]
pub struct Allocation {
    /// Chosen frequency per view, parallel to the input slice.
    pub freqs: Vec<Freq>,
    /// Estimated fleet power of the chosen frequencies, watts.
    pub power_w: f64,
    /// The budget slice this allocation had to fit, watts.
    pub available_w: f64,
    /// The unavoidable floor: estimated power with every machine pinned
    /// to its ladder minimum, watts. Water-filling cannot go below it, so
    /// `power_w` may legitimately exceed a slice smaller than this.
    pub floor_w: f64,
}

/// The central DVFS governor: greedy latency-levelling allocation under a
/// global power budget.
#[derive(Debug, Clone, Copy)]
pub struct CentralGovernor {
    /// Whole-fleet power budget, watts.
    pub budget_w: f64,
}

impl CentralGovernor {
    /// A governor with the given fleet budget.
    #[must_use]
    pub fn new(budget_w: f64) -> Self {
        CentralGovernor { budget_w }
    }

    /// Allocates frequencies to the reachable machines in `views`.
    ///
    /// Unreachable machines (self-governing on lower ladder rungs) keep a
    /// pro-rata share of the budget: with `fleet_machines` total, the
    /// reachable set fits inside `budget · |views| / fleet_machines`.
    ///
    /// Greedy water-filling: every machine starts at its ladder minimum;
    /// each step raises the machine with the worst predicted service time
    /// (ties broken by lower id) one ladder notch, if the power estimate
    /// still fits; machines whose next notch does not fit are frozen.
    /// Deterministic — no randomness, order fixed by (latency, id).
    #[must_use]
    pub fn allocate(&self, model: &PowerModel, views: &[MachineView<'_>], fleet_machines: usize) -> Allocation {
        let fleet = fleet_machines.max(views.len()).max(1);
        let available_w = self.budget_w * views.len() as f64 / fleet as f64;

        let ladders: Vec<Vec<Freq>> = views.iter().map(|v| v.ladder.iter().collect()).collect();
        let mut idx: Vec<usize> = vec![0; views.len()];
        let mut frozen: Vec<bool> = vec![false; views.len()];
        let power_of = |view: &MachineView<'_>, freq: Freq| {
            model.power(freq, &vec![1.0; view.cores.max(1)]).total()
        };
        let mut power_w: f64 = views
            .iter()
            .zip(&ladders)
            .map(|(v, l)| power_of(v, l[0]))
            .sum();
        let floor_w = power_w;

        loop {
            // The worst-latency machine that still has headroom.
            let mut pick: Option<(f64, usize)> = None;
            for (i, view) in views.iter().enumerate() {
                if frozen[i] || idx[i] + 1 >= ladders[i].len() {
                    continue;
                }
                let lat = view.service_time(ladders[i][idx[i]]);
                let better = match pick {
                    None => true,
                    Some((best, _)) => lat > best,
                };
                if better {
                    pick = Some((lat, i));
                }
            }
            let Some((_, i)) = pick else { break };
            let delta = power_of(&views[i], ladders[i][idx[i] + 1]) - power_of(&views[i], ladders[i][idx[i]]);
            if power_w + delta <= available_w {
                idx[i] += 1;
                power_w += delta;
            } else {
                frozen[i] = true;
            }
        }

        Allocation {
            freqs: idx.iter().zip(&ladders).map(|(&i, l)| l[i]).collect(),
            power_w,
            available_w,
            floor_w,
        }
    }
}

/// The local DEP+BURST fallback governor: lowest ladder frequency whose
/// predicted slowdown vs. the ladder maximum stays within the bound
/// (paper §VI, applied to the machine's own characterization).
#[derive(Debug, Clone, Copy)]
pub struct LocalGovernor {
    /// Tolerable slowdown vs. the ladder maximum (e.g. `0.05` = 5%).
    pub slowdown_bound: f64,
}

impl LocalGovernor {
    /// A local governor with the given slowdown bound.
    #[must_use]
    pub fn new(slowdown_bound: f64) -> Self {
        LocalGovernor {
            slowdown_bound: slowdown_bound.max(0.0),
        }
    }

    /// Picks the frequency for one machine. Always a member of `ladder`.
    #[must_use]
    pub fn choose(&self, view: &MachineView<'_>) -> Freq {
        let max = view.ladder.max();
        let budget = view.service_time(max) * (1.0 + self.slowdown_bound);
        view.ladder
            .iter()
            .find(|&f| view.service_time(f) <= budget)
            .unwrap_or(max)
    }
}

/// The root of the hierarchical governor: it owns no machines, only the
/// split of the effective global budget across region aggregators.
///
/// Region *shares* (fractions summing to one) are the persistent state.
/// Budget **cuts** propagate instantly — a brownout multiplies every
/// region's watts through the effective budget the same round — but
/// share *redistribution* is damped and dead-banded, so demand swings
/// and shock windows cannot oscillate watts back and forth across
/// regions (the anti-cascade hysteresis). When the root itself is down,
/// shares freeze and every region keeps allocating autonomously inside
/// its frozen share; machines notice nothing. That asymmetry — flat
/// central control dies with its root, a hierarchy only stops
/// *rebalancing* — is the whole point of the extra tier.
#[derive(Debug, Clone)]
pub struct HierarchicalGovernor {
    /// Fraction of the share gap closed per rebalance (`0..=1`).
    pub damping: f64,
    /// Largest per-region share gap that is left alone (hysteresis).
    pub deadband: f64,
    shares: Vec<f64>,
}

impl HierarchicalGovernor {
    /// A root over `regions` regions, starting at equal shares, with the
    /// default damping (30% per round) and deadband (2% of share).
    #[must_use]
    pub fn new(regions: usize) -> Self {
        let regions = regions.max(1);
        HierarchicalGovernor {
            damping: 0.3,
            deadband: 0.02,
            shares: vec![1.0 / regions as f64; regions],
        }
    }

    /// Number of regions.
    #[must_use]
    pub fn regions(&self) -> usize {
        self.shares.len()
    }

    /// The current region shares (always summing to 1 within float
    /// rounding).
    #[must_use]
    pub fn shares(&self) -> &[f64] {
        &self.shares
    }

    /// One rebalance step toward demand-proportional shares. `demand` is
    /// any non-negative per-region load proxy (reachable machines,
    /// queued work); `root_down` freezes the shares entirely — the
    /// regions run autonomously on what they last held.
    pub fn rebalance(&mut self, demand: &[f64], root_down: bool) {
        self.rebalance_masked(demand, &[], root_down);
    }

    /// One rebalance step with anti-cascade containment: regions marked
    /// `frozen` (typically: their aggregator is unreachable, so their
    /// demand signal is silence, not absence) keep their current share
    /// untouched, and only the active regions' slice of the budget is
    /// redistributed among the active regions. Without this, an orphaned
    /// region's share bleeds to its siblings round over round — the
    /// siblings run hotter on the windfall, and the region rejoins into a
    /// starved, floor-power slice: a textbook failure cascade.
    ///
    /// An empty `frozen` mask means no region is frozen.
    pub fn rebalance_masked(&mut self, demand: &[f64], frozen: &[bool], root_down: bool) {
        if root_down || demand.len() != self.shares.len() {
            return;
        }
        if !frozen.is_empty() && frozen.len() != self.shares.len() {
            return;
        }
        let is_frozen = |r: usize| frozen.get(r).copied().unwrap_or(false);
        let frozen_mass: f64 = self
            .shares
            .iter()
            .enumerate()
            .filter(|(r, _)| is_frozen(*r))
            .map(|(_, s)| s)
            .sum();
        let active_mass = (1.0 - frozen_mass).max(0.0);
        let total: f64 = demand
            .iter()
            .enumerate()
            .filter(|(r, _)| !is_frozen(*r))
            .map(|(_, d)| d.max(0.0))
            .sum();
        if total <= 0.0 || active_mass <= 0.0 {
            return;
        }
        let desired: Vec<f64> = demand
            .iter()
            .enumerate()
            .map(|(r, d)| {
                if is_frozen(r) {
                    self.shares[r]
                } else {
                    active_mass * d.max(0.0) / total
                }
            })
            .collect();
        let gap = desired
            .iter()
            .zip(&self.shares)
            .map(|(d, s)| (d - s).abs())
            .fold(0.0f64, f64::max);
        if gap <= self.deadband {
            return;
        }
        for (share, d) in self.shares.iter_mut().zip(&desired) {
            *share += (d - *share) * self.damping;
        }
        // Renormalize only the active mass: rounding drift must never
        // leak into (or out of) a frozen region's share.
        let active_sum: f64 = self
            .shares
            .iter()
            .enumerate()
            .filter(|(r, _)| !is_frozen(*r))
            .map(|(_, s)| s)
            .sum();
        if active_sum > 0.0 {
            for (r, share) in self.shares.iter_mut().enumerate() {
                if !is_frozen(r) {
                    *share *= active_mass / active_sum;
                }
            }
        }
    }

    /// The watts region `region` may allocate this round, given the
    /// effective (possibly browned-out) global budget. Cuts flow through
    /// immediately; only share redistribution is damped.
    #[must_use]
    pub fn region_budget(&self, region: usize, effective_w: f64) -> f64 {
        self.shares.get(region).copied().unwrap_or(0.0) * effective_w
    }
}

/// Trip parameters of the fleet's overshoot breaker.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BreakerConfig {
    /// Relative overshoot of the effective budget tolerated before the
    /// breaker trips anyone.
    pub rel_tol: f64,
    /// Rounds a tripped machine holds the V/f floor.
    pub hold_rounds: u32,
    /// Release stagger stride: the k-th machine tripped in one round is
    /// released `k * stagger_rounds` later than the first, so a tripped
    /// cohort cannot re-inrush together (anti-cascade).
    pub stagger_rounds: u32,
}

impl Default for BreakerConfig {
    fn default() -> Self {
        BreakerConfig {
            rel_tol: 0.10,
            hold_rounds: 3,
            stagger_rounds: 2,
        }
    }
}

/// The power-integrity breaker at the feed: when measured fleet power
/// exceeds the effective budget beyond tolerance, the worst overshooting
/// machines are forced to their V/f floor for a hold, released staggered.
/// Deterministic — candidates are ordered by (power, id).
///
/// This is the physical backstop under the governors: a fleet whose
/// machines degraded to budget-*oblivious* local control (a flat root
/// crash during a brownout) overshoots, trips, and pays for it in
/// latency; a hierarchy that kept its machines centrally governed fits
/// the budget and never meets the breaker.
#[derive(Debug, Clone)]
pub struct OvershootBreaker {
    config: BreakerConfig,
    /// Per machine: first round it is free again (0 = not tripped).
    tripped_until: Vec<u64>,
    trips: u64,
}

impl OvershootBreaker {
    /// A breaker over `machines` machines.
    #[must_use]
    pub fn new(machines: usize, config: BreakerConfig) -> Self {
        OvershootBreaker {
            config,
            tripped_until: vec![0; machines],
            trips: 0,
        }
    }

    /// Total trip events so far.
    #[must_use]
    pub fn trips(&self) -> u64 {
        self.trips
    }

    /// True if `machine` must run its V/f floor in `round`.
    #[must_use]
    pub fn is_tripped(&self, round: u64, machine: usize) -> bool {
        self.tripped_until.get(machine).is_some_and(|&until| round < until)
    }

    /// Feeds one round's measured per-machine powers. If the fleet
    /// overshoots `effective_w` beyond tolerance, trips machines —
    /// heaviest overshooters first — until the projected shed covers the
    /// excess. Returns how many machines were newly tripped.
    pub fn observe(&mut self, round: u64, effective_w: f64, power_w: &[f64]) -> usize {
        let total: f64 = power_w.iter().sum();
        let excess = total - effective_w * (1.0 + self.config.rel_tol);
        if excess <= 0.0 {
            return 0;
        }
        let fair = effective_w / power_w.len().max(1) as f64;
        let mut candidates: Vec<(usize, f64)> = power_w
            .iter()
            .copied()
            .enumerate()
            .filter(|&(m, p)| p > fair && !self.is_tripped(round + 1, m))
            .collect();
        candidates.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap_or(core::cmp::Ordering::Equal).then(a.0.cmp(&b.0)));
        let mut shed = 0.0;
        let mut newly = 0usize;
        for (m, p) in candidates {
            if shed >= excess {
                break;
            }
            // Forcing the floor recovers most of a busy machine's draw.
            shed += p * 0.8;
            let hold = u64::from(self.config.hold_rounds)
                + newly as u64 * u64::from(self.config.stagger_rounds);
            self.tripped_until[m] = round + 1 + hold;
            self.trips += 1;
            newly += 1;
        }
        newly
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn obs(ladder: &mut DegradationLadder, rounds: &[(bool, bool)]) -> Vec<GovernorMode> {
        rounds
            .iter()
            .enumerate()
            .map(|(r, &(reach, tel))| ladder.observe(r as u64, reach, tel))
            .collect()
    }

    #[test]
    fn partition_demotes_to_local_after_tolerance() {
        let mut l = DegradationLadder::new(DegradationConfig::default());
        let modes = obs(&mut l, &[(true, true), (false, true), (false, true)]);
        assert_eq!(
            modes,
            vec![
                GovernorMode::Central,
                GovernorMode::Central,
                GovernorMode::LocalDepBurst
            ]
        );
        assert_eq!(l.transitions().len(), 1);
        assert_eq!(l.transitions()[0].reason, "partition");
    }

    #[test]
    fn sustained_loss_walks_the_whole_ladder_down() {
        let cfg = DegradationConfig {
            loss_tolerance: 2,
            ..DegradationConfig::default()
        };
        let mut l = DegradationLadder::new(cfg);
        let modes = obs(&mut l, &[(true, false); 5]);
        assert_eq!(modes[1], GovernorMode::LocalDepBurst, "loss demotes central");
        assert_eq!(
            *modes.last().unwrap(),
            GovernorMode::FallbackMax,
            "continued loss reaches the hardened fallback"
        );
        assert!(l.monotonicity_issue().is_none());
    }

    #[test]
    fn rejoin_is_hysteretic_one_rung_per_window() {
        let cfg = DegradationConfig {
            rejoin_threshold: 3,
            ..DegradationConfig::default()
        };
        let mut l = DegradationLadder::new(cfg);
        l.force_fallback(0, "crash-restart");
        assert_eq!(l.mode(), GovernorMode::FallbackMax);
        // Two healthy rounds are not enough; flapping resets the window.
        l.observe(1, true, true);
        l.observe(2, true, true);
        l.observe(3, false, true);
        assert_eq!(l.mode(), GovernorMode::FallbackMax);
        // A full window climbs exactly one rung...
        for r in 4..7 {
            l.observe(r, true, true);
        }
        assert_eq!(l.mode(), GovernorMode::LocalDepBurst);
        // ...and the next rung needs its own full window.
        l.observe(7, true, true);
        l.observe(8, true, true);
        assert_eq!(l.mode(), GovernorMode::LocalDepBurst);
        l.observe(9, true, true);
        assert_eq!(l.mode(), GovernorMode::Central);
        assert!(l.monotonicity_issue().is_none());
    }

    #[test]
    fn mode_sequence_is_a_pure_function_of_observations() {
        let pattern: Vec<(bool, bool)> = (0..40)
            .map(|r| (r % 7 != 0, r % 5 != 0))
            .collect();
        let mut a = DegradationLadder::new(DegradationConfig::default());
        let mut b = DegradationLadder::new(DegradationConfig::default());
        assert_eq!(obs(&mut a, &pattern), obs(&mut b, &pattern));
        assert_eq!(a.transitions(), b.transitions());
    }

    #[test]
    fn monotonicity_catches_a_forged_multi_rung_rejoin() {
        let mut l = DegradationLadder::new(DegradationConfig::default());
        l.transitions.push(Transition {
            round: 1,
            from: GovernorMode::FallbackMax,
            to: GovernorMode::Central,
            reason: "forged",
        });
        assert!(l.monotonicity_issue().unwrap().contains("multi-rung"));
    }

    fn ladder() -> FreqLadder {
        FreqLadder::paper_default()
    }

    #[test]
    fn allocation_respects_budget_and_ladders() {
        let model = PowerModel::haswell_22nm();
        let l = ladder();
        let views: Vec<MachineView<'_>> = (0..4)
            .map(|id| MachineView {
                id,
                ladder: &l,
                scaling_s: 0.8 + 0.1 * id as f64,
                fixed_s: 0.2,
                cores: 4,
            })
            .collect();
        let gov = CentralGovernor::new(200.0);
        let alloc = gov.allocate(&model, &views, 4);
        assert!(alloc.power_w <= alloc.available_w + 1e-9);
        for (f, v) in alloc.freqs.iter().zip(&views) {
            assert!(v.ladder.contains(*f), "{f:?} not on the ladder");
        }
        // The heaviest machine (largest scaling_s) gets at least as much
        // frequency as the lightest.
        assert!(alloc.freqs[3] >= alloc.freqs[0]);
    }

    #[test]
    fn huge_budget_pins_everyone_at_max_and_zero_budget_at_min() {
        let model = PowerModel::haswell_22nm();
        let l = ladder();
        let views: Vec<MachineView<'_>> = (0..3)
            .map(|id| MachineView {
                id,
                ladder: &l,
                scaling_s: 1.0,
                fixed_s: 0.1,
                cores: 4,
            })
            .collect();
        let rich = CentralGovernor::new(1e6).allocate(&model, &views, 3);
        assert!(rich.freqs.iter().all(|&f| f == l.max()));
        let poor = CentralGovernor::new(0.0).allocate(&model, &views, 3);
        assert!(poor.freqs.iter().all(|&f| f == l.min()));
    }

    #[test]
    fn unreachable_machines_reserve_their_budget_share() {
        let model = PowerModel::haswell_22nm();
        let l = ladder();
        let views = vec![MachineView {
            id: 0,
            ladder: &l,
            scaling_s: 1.0,
            fixed_s: 0.1,
            cores: 4,
        }];
        let gov = CentralGovernor::new(400.0);
        let alone = gov.allocate(&model, &views, 1);
        let shared = gov.allocate(&model, &views, 4);
        assert!((alone.available_w - 400.0).abs() < 1e-9);
        assert!((shared.available_w - 100.0).abs() < 1e-9);
        assert!(shared.freqs[0] <= alone.freqs[0]);
    }

    #[test]
    fn local_governor_honors_the_slowdown_bound_on_the_ladder() {
        let l = ladder();
        let view = MachineView {
            id: 0,
            ladder: &l,
            scaling_s: 0.9,
            fixed_s: 0.3,
            cores: 4,
        };
        let f = LocalGovernor::new(0.10).choose(&view);
        assert!(l.contains(f));
        let bound = view.service_time(l.max()) * 1.10;
        assert!(view.service_time(f) <= bound + 1e-12);
        // A zero bound forces the maximum.
        assert_eq!(LocalGovernor::new(0.0).choose(&view), l.max());
    }

    #[test]
    fn thermal_emergency_blocks_rejoin_but_never_demotes() {
        let cfg = DegradationConfig {
            rejoin_threshold: 2,
            ..DegradationConfig::default()
        };
        // A thermally-unhappy but connected machine stays where it is.
        let mut hot = DegradationLadder::new(cfg);
        for r in 0..6 {
            assert_eq!(
                hot.observe_health(r, true, true, false),
                GovernorMode::Central,
                "thermal distress alone must not demote"
            );
        }
        // After a partition heals, a thermal emergency holds the rejoin.
        let mut l = DegradationLadder::new(cfg);
        l.observe_health(0, false, true, true);
        l.observe_health(1, false, true, true);
        assert_eq!(l.mode(), GovernorMode::LocalDepBurst);
        for r in 2..8 {
            assert_eq!(
                l.observe_health(r, true, true, false),
                GovernorMode::LocalDepBurst,
                "rejoin streak must not accumulate while throttling"
            );
        }
        assert_eq!(l.observe_health(8, true, true, true), GovernorMode::LocalDepBurst);
        assert_eq!(l.observe_health(9, true, true, true), GovernorMode::Central);
        assert!(l.monotonicity_issue().is_none());
    }

    #[test]
    fn observe_health_with_thermal_ok_matches_observe() {
        let cfg = DegradationConfig::default();
        let mut a = DegradationLadder::new(cfg);
        let mut b = DegradationLadder::new(cfg);
        let pattern = [
            (true, true),
            (false, true),
            (false, false),
            (true, false),
            (true, true),
            (true, true),
            (true, true),
            (true, true),
        ];
        for (r, &(reach, tel)) in pattern.iter().enumerate() {
            let ma = a.observe(r as u64, reach, tel);
            let mb = b.observe_health(r as u64, reach, tel, true);
            assert_eq!(ma, mb);
        }
        assert_eq!(a.transitions().len(), b.transitions().len());
    }

    #[test]
    fn hierarchy_starts_equal_and_conserves_the_budget() {
        let h = HierarchicalGovernor::new(4);
        assert_eq!(h.regions(), 4);
        let total: f64 = (0..4).map(|r| h.region_budget(r, 240.0)).sum();
        assert!((total - 240.0).abs() < 1e-9);
        for r in 0..4 {
            assert!((h.region_budget(r, 240.0) - 60.0).abs() < 1e-9);
        }
    }

    #[test]
    fn hierarchy_rebalance_is_damped_and_freezes_when_root_is_down() {
        let mut h = HierarchicalGovernor::new(2);
        // Root down: shares frozen no matter the demand skew.
        h.rebalance(&[10.0, 0.0], true);
        assert!((h.shares()[0] - 0.5).abs() < 1e-12);
        // Root up: one step moves partway toward demand, not all the way.
        h.rebalance(&[3.0, 1.0], false);
        assert!(h.shares()[0] > 0.5 && h.shares()[0] < 0.75);
        let after_one = h.shares()[0];
        // Repeated steps converge toward the demand split.
        for _ in 0..50 {
            h.rebalance(&[3.0, 1.0], false);
        }
        assert!(h.shares()[0] > after_one);
        assert!((h.shares()[0] - 0.75).abs() < h.deadband + 1e-9);
        let total: f64 = h.shares().iter().sum();
        assert!((total - 1.0).abs() < 1e-9);
    }

    #[test]
    fn hierarchy_deadband_suppresses_small_swings() {
        let mut h = HierarchicalGovernor::new(2);
        h.rebalance(&[1.01, 0.99], false);
        assert!((h.shares()[0] - 0.5).abs() < 1e-12, "inside the deadband nothing moves");
    }

    #[test]
    fn breaker_ignores_fleets_inside_the_budget() {
        let mut b = OvershootBreaker::new(3, BreakerConfig::default());
        assert_eq!(b.observe(0, 300.0, &[100.0, 100.0, 100.0]), 0);
        assert_eq!(b.trips(), 0);
        assert!(!b.is_tripped(1, 0));
    }

    #[test]
    fn breaker_trips_heaviest_overshooters_with_staggered_release() {
        let cfg = BreakerConfig {
            rel_tol: 0.10,
            hold_rounds: 2,
            stagger_rounds: 3,
        };
        let mut b = OvershootBreaker::new(3, cfg);
        // 420 W against a 200 W budget: machine 2 then machine 1 trip.
        let newly = b.observe(5, 200.0, &[60.0, 160.0, 200.0]);
        assert_eq!(newly, 2);
        assert_eq!(b.trips(), 2);
        assert!(!b.is_tripped(6, 0), "the light machine rides through");
        assert!(b.is_tripped(6, 1) && b.is_tripped(6, 2));
        // First trip (machine 2) holds 2 rounds, second adds one stagger.
        assert!(!b.is_tripped(8, 2));
        assert!(b.is_tripped(8, 1));
        assert!(!b.is_tripped(11, 1));
    }

    #[test]
    fn breaker_is_deterministic_on_ties() {
        let mut a = OvershootBreaker::new(4, BreakerConfig::default());
        let mut b = OvershootBreaker::new(4, BreakerConfig::default());
        let powers = [150.0, 150.0, 150.0, 150.0];
        a.observe(0, 300.0, &powers);
        b.observe(0, 300.0, &powers);
        for m in 0..4 {
            assert_eq!(a.is_tripped(1, m), b.is_tripped(1, m));
        }
    }
}
