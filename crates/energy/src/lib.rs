//! `energyx` — processor power modelling and the DEP+BURST energy-management
//! case study (paper §VI).
//!
//! * [`VfCurve`] — the voltage/frequency operating points (Haswell
//!   i7-4770K-like, 22 nm, 125 MHz steps);
//! * [`PowerModel`] — an analytical CMOS chip power model (the McPAT 1.0
//!   substitute): per-core dynamic `C·V²·f·activity` plus
//!   voltage-dependent leakage and uncore power;
//! * [`EnergyManager`] — the paper's quantum-based manager: start at the
//!   highest frequency, predict each interval's performance at every DVFS
//!   state with a DEP+BURST-style predictor, and pick the lowest frequency
//!   whose predicted slowdown vs. the maximum frequency stays within a
//!   user-specified bound;
//! * [`static_optimal`] — the oracle baseline of Fig. 7: the single fixed
//!   frequency minimising measured energy, subject to the same measured
//!   slowdown bound.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod governor;
mod manager;
mod metrics;
mod oracle;
mod power;
mod vf;

pub use governor::{
    Allocation, BreakerConfig, CentralGovernor, DegradationConfig, DegradationLadder,
    GovernorMode, GovernorPolicy, HierarchicalGovernor, LocalGovernor, MachineView,
    OvershootBreaker, Transition,
};
pub use manager::{EnergyManager, HardeningConfig, ManagerConfig, ManagerReport};
pub use metrics::{select_best, Efficiency, Objective};
pub use oracle::{static_optimal, try_static_optimal, StaticPoint, StaticSweep};
pub use power::{EnergyAccount, PowerBreakdown, PowerModel};
pub use vf::VfCurve;
