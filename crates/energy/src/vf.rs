//! The voltage/frequency operating curve.

use dvfs_trace::{Freq, FreqLadder};

/// A linear V/f curve over a frequency ladder, mirroring the Intel
/// i7-4770K (22 nm Haswell) settings the paper uses (§IV): low frequencies
/// run near the transistor threshold, the top frequency needs just over a
/// volt.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct VfCurve {
    ladder: FreqLadder,
    v_min: f64,
    v_max: f64,
}

impl VfCurve {
    /// The paper's curve: 1.0 GHz @ 0.65 V to 4.0 GHz @ 1.05 V in
    /// 125 MHz steps.
    #[must_use]
    pub fn haswell() -> Self {
        VfCurve {
            ladder: FreqLadder::paper_default(),
            v_min: 0.65,
            v_max: 1.05,
        }
    }

    /// Builds a custom curve.
    #[must_use]
    pub fn new(ladder: FreqLadder, v_min: f64, v_max: f64) -> Self {
        VfCurve {
            ladder,
            v_min,
            v_max,
        }
    }

    /// The operating-point ladder.
    #[must_use]
    pub fn ladder(&self) -> &FreqLadder {
        &self.ladder
    }

    /// Checks that the curve is physically sane: every ladder operating
    /// point maps to a finite, strictly positive voltage, and voltage
    /// never decreases as frequency rises. Returns a description of the
    /// first problem found, or `None` when the curve is well-formed
    /// (the `vf-monotonicity` invariant of `simx::invariants`).
    #[must_use]
    pub fn monotonicity_issue(&self) -> Option<String> {
        let mut prev: Option<(Freq, f64)> = None;
        for f in self.ladder.iter() {
            let v = self.voltage(f);
            if !v.is_finite() || v <= 0.0 {
                return Some(format!(
                    "voltage at {} MHz is {v} V (want finite and positive)",
                    f.mhz()
                ));
            }
            if let Some((pf, pv)) = prev {
                if v < pv {
                    return Some(format!(
                        "voltage falls from {pv} V at {} MHz to {v} V at {} MHz",
                        pf.mhz(),
                        f.mhz()
                    ));
                }
            }
            prev = Some((f, v));
        }
        None
    }

    /// The supply voltage at `freq` (linear interpolation, clamped to the
    /// ladder's range).
    #[must_use]
    pub fn voltage(&self, freq: Freq) -> f64 {
        let lo = self.ladder.min().hz();
        let hi = self.ladder.max().hz();
        let t = ((freq.hz() - lo) / (hi - lo)).clamp(0.0, 1.0);
        self.v_min + t * (self.v_max - self.v_min)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn endpoint_voltages() {
        let vf = VfCurve::haswell();
        assert!((vf.voltage(Freq::from_ghz(1.0)) - 0.65).abs() < 1e-12);
        assert!((vf.voltage(Freq::from_ghz(4.0)) - 1.05).abs() < 1e-12);
        let mid = vf.voltage(Freq::from_ghz(2.5));
        assert!((mid - 0.85).abs() < 1e-12);
    }

    #[test]
    fn voltage_is_monotone_on_ladder() {
        let vf = VfCurve::haswell();
        let mut last = 0.0;
        for f in vf.ladder().iter() {
            let v = vf.voltage(f);
            assert!(v > last);
            last = v;
        }
    }

    #[test]
    fn monotonicity_issue_flags_inverted_curves_only() {
        assert_eq!(VfCurve::haswell().monotonicity_issue(), None);
        // Swapped rails make voltage fall as frequency rises.
        let bad = VfCurve::new(FreqLadder::paper_default(), 1.05, 0.65);
        let issue = bad.monotonicity_issue().expect("inverted curve flagged");
        assert!(issue.contains("falls"), "unexpected issue text: {issue}");
        // A non-positive rail is caught before the monotonicity walk.
        let flat = VfCurve::new(FreqLadder::paper_default(), 0.0, 0.0);
        let issue = flat.monotonicity_issue().expect("zero-volt curve flagged");
        assert!(issue.contains("positive"), "unexpected issue text: {issue}");
    }

    #[test]
    fn clamping_outside_range() {
        let vf = VfCurve::haswell();
        assert_eq!(vf.voltage(Freq::from_mhz(500)), 0.65);
        assert_eq!(vf.voltage(Freq::from_ghz(5.0)), 1.05);
    }
}
