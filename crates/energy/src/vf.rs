//! The voltage/frequency operating curve.

use dvfs_trace::{Freq, FreqLadder};

/// A linear V/f curve over a frequency ladder, mirroring the Intel
/// i7-4770K (22 nm Haswell) settings the paper uses (§IV): low frequencies
/// run near the transistor threshold, the top frequency needs just over a
/// volt.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct VfCurve {
    ladder: FreqLadder,
    v_min: f64,
    v_max: f64,
}

impl VfCurve {
    /// The paper's curve: 1.0 GHz @ 0.65 V to 4.0 GHz @ 1.05 V in
    /// 125 MHz steps.
    #[must_use]
    pub fn haswell() -> Self {
        VfCurve {
            ladder: FreqLadder::paper_default(),
            v_min: 0.65,
            v_max: 1.05,
        }
    }

    /// Builds a custom curve.
    #[must_use]
    pub fn new(ladder: FreqLadder, v_min: f64, v_max: f64) -> Self {
        VfCurve {
            ladder,
            v_min,
            v_max,
        }
    }

    /// The operating-point ladder.
    #[must_use]
    pub fn ladder(&self) -> &FreqLadder {
        &self.ladder
    }

    /// The supply voltage at `freq` (linear interpolation, clamped to the
    /// ladder's range).
    #[must_use]
    pub fn voltage(&self, freq: Freq) -> f64 {
        let lo = self.ladder.min().hz();
        let hi = self.ladder.max().hz();
        let t = ((freq.hz() - lo) / (hi - lo)).clamp(0.0, 1.0);
        self.v_min + t * (self.v_max - self.v_min)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn endpoint_voltages() {
        let vf = VfCurve::haswell();
        assert!((vf.voltage(Freq::from_ghz(1.0)) - 0.65).abs() < 1e-12);
        assert!((vf.voltage(Freq::from_ghz(4.0)) - 1.05).abs() < 1e-12);
        let mid = vf.voltage(Freq::from_ghz(2.5));
        assert!((mid - 0.85).abs() < 1e-12);
    }

    #[test]
    fn voltage_is_monotone_on_ladder() {
        let vf = VfCurve::haswell();
        let mut last = 0.0;
        for f in vf.ladder().iter() {
            let v = vf.voltage(f);
            assert!(v > last);
            last = v;
        }
    }

    #[test]
    fn clamping_outside_range() {
        let vf = VfCurve::haswell();
        assert_eq!(vf.voltage(Freq::from_mhz(500)), 0.65);
        assert_eq!(vf.voltage(Freq::from_ghz(5.0)), 1.05);
    }
}
