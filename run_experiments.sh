#!/bin/bash
# Regenerates every table and figure of the paper into results/.
# Usage: ./run_experiments.sh [scale] [seeds]
set -u
SCALE=${1:-0.4}
SEEDS=${2:-1}
BIN=target/release
cd "$(dirname "$0")"
echo "== table2 =="   && $BIN/table2                 > results/table2.txt
echo "== table1 =="   && $BIN/table1 $SCALE          > results/table1.txt 2>results/table1.log
echo "== fig1 =="     && $BIN/fig1 $SCALE $SEEDS     > results/fig1.txt   2>results/fig1.log
echo "== fig3 =="     && $BIN/fig3 both $SCALE $SEEDS > results/fig3.txt  2>results/fig3.log
echo "== fig4 =="     && $BIN/fig4 $SCALE $SEEDS     > results/fig4.txt   2>results/fig4.log
echo "== fig6 =="     && $BIN/fig6 "" $SCALE         > results/fig6.txt   2>results/fig6.log
echo "== fig7 =="     && $BIN/fig7 10 $SCALE 1 250   > results/fig7.txt   2>results/fig7.log
echo "== ablation ==" && $BIN/ablation $SCALE        > results/ablation.txt 2>results/ablation.log
echo "== percore =="  && $BIN/percore $SCALE         > results/percore.txt 2>results/percore.log
echo "== faults =="   && $BIN/faults $SCALE $SEEDS   > results/faults.txt  2>results/faults.log
echo "all experiments complete"
