//! The paper's Figure 2 walkthrough, live: two threads synchronising on a
//! futex-backed critical section, the resulting synchronization-epoch
//! stream, and how per-epoch vs across-epoch critical-thread prediction
//! (Algorithm 1) aggregate it.
//!
//! ```text
//! cargo run --release --example epoch_walkthrough
//! ```

use depburst::{Dep, DvfsPredictor};
use dvfs_trace::{EpochEnd, Freq, ThreadRole};
use simx::mem::AccessPattern;
use simx::program::FnProgram;
use simx::{Action, Machine, MachineConfig, ProgContext, SpawnRequest, WorkItem};

fn main() {
    let mut mc = MachineConfig::haswell_quad();
    mc.initial_freq = Freq::from_ghz(1.0);
    let mut machine = Machine::new(mc);

    // A hand-rolled futex mutex, exactly like Fig. 2's critical section.
    let (futex, word) = machine.register_futex(0);

    // t0: compute, take the lock, do *memory-bound* work inside the
    // critical section (the part t1's progress will depend on), unlock.
    let w0 = word.clone();
    let mut step0 = 0;
    machine.spawn(SpawnRequest::new(
        "t0",
        ThreadRole::Application,
        Box::new(FnProgram(move |_ctx: &mut ProgContext| {
            step0 += 1;
            match step0 {
                1 => Action::Work(WorkItem::Compute {
                    instructions: 400_000,
                    ipc: 2.0,
                }),
                2 => {
                    w0.set(1); // acquire (uncontended fast path)
                    Action::Work(WorkItem::Memory {
                        accesses: 3_000,
                        pattern: AccessPattern::Random {
                            base: 0,
                            working_set: 256 << 20,
                        },
                        mlp: 1.0,
                        compute_per_access: 2.0,
                        ipc: 2.0,
                        seed: 42,
                    })
                }
                3 => {
                    w0.set(0); // release
                    Action::FutexWake { futex, count: 1 }
                }
                4 => Action::Work(WorkItem::Compute {
                    instructions: 900_000,
                    ipc: 2.0,
                }),
                _ => Action::Exit,
            }
        })),
    ));

    // t1: compute a bit more, then try the lock — it will be held, so t1
    // sleeps in the kernel (futex) until t0 finishes the critical section.
    let w1 = word.clone();
    let mut step1 = 0;
    machine.spawn(SpawnRequest::new(
        "t1",
        ThreadRole::Application,
        Box::new(FnProgram(move |_ctx: &mut ProgContext| {
            step1 += 1;
            match step1 {
                1 => Action::Work(WorkItem::Compute {
                    instructions: 500_000,
                    ipc: 2.0,
                }),
                2 => {
                    if w1.get() != 0 {
                        w1.set(2); // mark contended, go to the kernel
                        Action::FutexWait { futex, expected: 2 }
                    } else {
                        Action::Work(WorkItem::Compute {
                            instructions: 1,
                            ipc: 2.0,
                        })
                    }
                }
                3 => Action::Work(WorkItem::Compute {
                    instructions: 900_000,
                    ipc: 2.0,
                }),
                _ => Action::Exit,
            }
        })),
    ));

    machine.run().expect("completes");
    let trace = machine.harvest_trace();
    trace.validate().expect("valid");

    println!("epoch stream (base {}):", trace.base);
    for (i, e) in trace.epochs.iter().enumerate() {
        let who: Vec<String> = e
            .threads
            .iter()
            .map(|s| {
                format!(
                    "{}: active {} (crit {})",
                    s.thread, s.counters.active, s.counters.crit
                )
            })
            .collect();
        let end = match e.end {
            EpochEnd::Stall(t) => format!("thread {t} went to sleep"),
            EpochEnd::Wake(t) => format!("thread {t} woke"),
            EpochEnd::Exit(t) => format!("thread {t} exited"),
            EpochEnd::QuantumBoundary => "measurement cut".to_owned(),
            EpochEnd::TraceEnd => "trace end".to_owned(),
        };
        println!("  epoch {i}: {} [{}] -> {end}", e.duration, who.join(", "));
    }

    for target in [Freq::from_ghz(2.0), Freq::from_ghz(4.0)] {
        let across = Dep::dep_burst().predict(&trace, target);
        let per = Dep::dep_burst_per_epoch().predict(&trace, target);
        println!(
            "prediction at {target}: across-epoch CTP {across}, per-epoch CTP {per}"
        );
    }
}
