//! Energy management with performance guarantees (paper §VI): run a
//! benchmark under the DEP+BURST-driven energy manager at 5% and 10%
//! tolerable slowdown, and report the savings vs always running at 4 GHz.
//!
//! ```text
//! cargo run --release --example energy_budget [benchmark] [scale]
//! ```

use depburst::Dep;
use dvfs_trace::Freq;
use energyx::{EnergyManager, ManagerConfig};
use harness::{run_benchmark, RunConfig};
use simx::{Machine, MachineConfig};

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let name = args.get(1).map(String::as_str).unwrap_or("xalan");
    let scale: f64 = args.get(2).and_then(|s| s.parse().ok()).unwrap_or(0.1);
    let bench = dacapo_sim::benchmark(name).expect("known benchmark");

    // Baseline: always at the highest frequency.
    let base = run_benchmark(bench, RunConfig::at_ghz(4.0).scaled(scale));
    let power = energyx::PowerModel::haswell_22nm();
    let base_energy = power.energy_of_run(
        Freq::from_ghz(4.0),
        base.exec,
        base.stats.total_active(),
        4,
    );
    println!(
        "{name} at 4 GHz: {} / {:.2} J ({:.1} W mean)",
        base.exec,
        base_energy,
        base_energy / base.exec.as_secs()
    );

    for threshold in [0.05, 0.10] {
        let mut mc = MachineConfig::haswell_quad();
        mc.initial_freq = Freq::from_ghz(4.0);
        let mut machine = Machine::new(mc);
        bench.install(&mut machine, scale, 1);

        let manager = EnergyManager::new(
            ManagerConfig::with_threshold(threshold),
            Box::new(Dep::dep_burst()),
        );
        let report = manager.run(&mut machine).expect("managed run");
        let slowdown = report.exec.as_secs() / base.exec.as_secs() - 1.0;
        let savings = 1.0 - report.energy_j / base_energy;
        println!(
            "tolerable {:>3.0}%: exec {} (slowdown {:+.1}%), energy {:.2} J (saved {:+.1}%), mean {:.2} GHz, {} switches",
            threshold * 100.0,
            report.exec,
            slowdown * 100.0,
            report.energy_j,
            savings * 100.0,
            report.mean_ghz(),
            report.switches,
        );
    }
}
