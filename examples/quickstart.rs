//! Quickstart: measure a managed multithreaded benchmark at 1 GHz and
//! predict its execution time at 4 GHz with DEP+BURST.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use depburst::{Dep, DvfsPredictor, MCrit};
use dvfs_trace::Freq;
use harness::{run_benchmark, RunConfig};

fn main() {
    // Pick a memory-intensive benchmark from the paper's Table I roster.
    let bench = dacapo_sim::benchmark("lusearch").expect("known benchmark");
    let scale = 0.1; // 10% of the paper's full run keeps this snappy

    // 1. Run at the base frequency and capture the execution trace: the
    //    synchronization epochs and DVFS counters a predictor may observe.
    println!("running {} at 1 GHz ...", bench.name);
    let base = run_benchmark(bench, RunConfig::at_ghz(1.0).scaled(scale));
    println!(
        "  measured {} ({} GCs, {} epochs)",
        base.exec,
        base.gc_count,
        base.trace.epochs.len()
    );

    // 2. Predict the 4 GHz execution time from the 1 GHz trace.
    let target = Freq::from_ghz(4.0);
    let dep_burst = Dep::dep_burst();
    let mcrit = MCrit::plain();
    let predicted = dep_burst.predict(&base.trace, target);
    let naive = mcrit.predict(&base.trace, target);

    // 3. Check against the truth.
    println!("running {} at 4 GHz ...", bench.name);
    let actual = run_benchmark(bench, RunConfig::at_ghz(4.0).scaled(scale));
    let err = |p: dvfs_trace::TimeDelta| (p.as_secs() / actual.exec.as_secs() - 1.0) * 100.0;
    println!("  actual          {}", actual.exec);
    println!(
        "  {:<12} {}  ({:+.1}%)",
        dep_burst.name(),
        predicted,
        err(predicted)
    );
    println!("  {:<12} {}  ({:+.1}%)", mcrit.name(), naive, err(naive));
}
