//! Building a custom managed workload: implement [`mrt::WorkSource`], wire
//! it onto a machine through [`mrt::ManagedRuntime`], and feed the trace to
//! the predictor family — the same path the DaCapo models use.
//!
//! The workload here is a toy producer/consumer pipeline: producers parse
//! "requests" (compute + allocation), consumers look them up in a shared
//! table (memory) under a lock.
//!
//! ```text
//! cargo run --release --example custom_workload
//! ```

use depburst::{paper_roster, relative_error};
use dvfs_trace::Freq;
use mrt::{ManagedRuntime, RuntimeConfig, Step, StepContext, WorkSource};
use simx::mem::AccessPattern;
use simx::{Machine, MachineConfig, WorkItem};

/// One pipeline worker: alternates parsing (producer half) and lookups
/// (consumer half).
struct PipelineWorker {
    requests_left: u32,
    phase: u8,
    id: u64,
}

impl WorkSource for PipelineWorker {
    fn next_step(&mut self, _ctx: &StepContext) -> Option<Step> {
        if self.requests_left == 0 {
            return None;
        }
        let step = match self.phase {
            // Parse: branchy compute plus an output buffer allocation.
            0 => Step::Work(WorkItem::Compute {
                instructions: 180_000,
                ipc: 1.7,
            }),
            1 => Step::Alloc { bytes: 48 << 10 },
            // Publish into the shared table under the lock.
            2 => Step::Lock(0),
            3 => Step::Work(WorkItem::Compute {
                instructions: 8_000,
                ipc: 1.5,
            }),
            4 => Step::Unlock(0),
            // Consume: scattered lookups over the shared table.
            _ => Step::Work(WorkItem::Memory {
                accesses: 2_000,
                pattern: AccessPattern::Random {
                    base: 1 << 42,
                    working_set: 24 << 20,
                },
                mlp: 2.0,
                compute_per_access: 6.0,
                ipc: 1.7,
                seed: self.id * 1000 + u64::from(self.requests_left),
            }),
        };
        self.phase += 1;
        if self.phase == 6 {
            self.phase = 0;
            self.requests_left -= 1;
        }
        Some(step)
    }
}

fn run_at(ghz: f64) -> (dvfs_trace::TimeDelta, dvfs_trace::ExecutionTrace, u64) {
    let mut mc = MachineConfig::haswell_quad();
    mc.initial_freq = Freq::from_ghz(ghz);
    let mut machine = Machine::new(mc);
    let sources: Vec<Box<dyn WorkSource>> = (0..4)
        .map(|id| {
            Box::new(PipelineWorker {
                requests_left: 400,
                phase: 0,
                id,
            }) as Box<dyn WorkSource>
        })
        .collect();
    // 48 MB heap -> 12 MB nursery: the allocation stream forces collections.
    let runtime = ManagedRuntime::install(
        &mut machine,
        RuntimeConfig::with_heap(48 << 20),
        sources,
        1,
        &[4],
    );
    machine.run().expect("no deadlock");
    let trace = machine.harvest_trace();
    (trace.total, trace, runtime.gc_count())
}

fn main() {
    println!("running the pipeline at 1 GHz ...");
    let (t1, trace, gcs) = run_at(1.0);
    println!(
        "  {} with {gcs} collections, {} epochs, {} threads",
        t1,
        trace.epochs.len(),
        trace.threads.len()
    );

    println!("running the pipeline at 3 GHz ...");
    let (t3, _, _) = run_at(3.0);
    println!("  {} measured", t3);

    println!("predictions 1 GHz -> 3 GHz:");
    for predictor in paper_roster() {
        let p = predictor.predict(&trace, Freq::from_ghz(3.0));
        println!(
            "  {:<14} {}  ({:+.1}%)",
            predictor.name(),
            p,
            relative_error(p, t3) * 100.0
        );
    }
}
