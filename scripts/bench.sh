#!/bin/bash
# Benchmarks the fleet simulation and writes the committed snapshot
# BENCH_fleet.json at the repo root — the ROADMAP's benchmark
# trajectory: re-run after performance-relevant PRs and check the new
# numbers in next to the old file's history.
#
# The workload is fixed (64 machines, 4 shards, 200 rounds, chaos 0.5,
# seed 1) so snapshots compare across commits; wall time excludes the
# build. Characterization points are simulated cold (in-process cache
# only), so the number covers the full pipeline, not just the round loop.
set -euo pipefail
cd "$(dirname "$0")/.."

MACHINES=64
SHARDS=4
ROUNDS=200
SCALE=0.02
JOBS=4

cargo build --release -q -p harness

t0=$(date +%s.%N)
target/release/fleet "$MACHINES" "$ROUNDS" "$SCALE" 1 \
    --shards "$SHARDS" --chaos 0.5 --chaos-seed 7 --policy depburst \
    --jobs "$JOBS" > /dev/null 2> /dev/null
t1=$(date +%s.%N)

awk -v a="$t0" -v b="$t1" -v m="$MACHINES" -v r="$ROUNDS" \
    -v sh="$SHARDS" -v j="$JOBS" -v sc="$SCALE" 'BEGIN {
    secs = b - a
    printf "{\n"
    printf "  \"benchmark\": \"fleet\",\n"
    printf "  \"machines\": %d,\n", m
    printf "  \"shards\": %d,\n", sh
    printf "  \"rounds\": %d,\n", r
    printf "  \"scale\": %s,\n", sc
    printf "  \"jobs\": %d,\n", j
    printf "  \"wall_seconds\": %.3f,\n", secs
    printf "  \"machine_rounds_per_second\": %.0f\n", m * r / secs
    printf "}\n"
}' > BENCH_fleet.json

cat BENCH_fleet.json
