#!/bin/bash
# Benchmarks the simulator core and the fleet simulation, writing the two
# committed snapshots at the repo root — the ROADMAP's benchmark
# trajectory. Re-run after performance-relevant PRs and check the new
# numbers in next to the old files' history:
#
#   BENCH_sim.json    single-machine simulator throughput (a full-scale
#                     lusearch point, best of 3: wall seconds and
#                     events/second) plus the full fig3 sweep wall time,
#                     exact and on the sampled tier (`--sampling on`).
#   BENCH_fleet.json  the fleet pipeline (64 machines, 4 shards, 200
#                     rounds, chaos 0.5, seed 1): wall seconds and
#                     machine-rounds/second, plus the same fleet with
#                     the thermal/power-integrity layer armed (RC model,
#                     throttle ladder, breaker, hierarchical governor,
#                     brownout chaos) and the measured overhead percent.
#
# Workloads are fixed so snapshots compare across commits; wall time
# excludes the build. Every benchmark process must exit 0 — a nonzero
# exit aborts the script loudly rather than silently committing a bogus
# snapshot.
set -euo pipefail
cd "$(dirname "$0")/.."

fail() {
    echo "bench.sh: $*" >&2
    exit 1
}

now() { date +%s.%N; }

elapsed() { awk -v a="$1" -v b="$2" 'BEGIN { printf "%.3f", b - a }'; }

cargo build --release -q -p harness || fail "release build failed"

# --- single-machine simulator throughput -------------------------------
# One full-scale memory-bound point; best-of-3 wall time rides out
# scheduler noise. The events/second metric divides the engine's
# dispatched-event count (printed by dvfs-lab) by the best wall time.
SP_BENCH=lusearch
SP_GHZ=2
SP_SCALE=1
sp_best=""
sp_out=""
for _ in 1 2 3; do
    t0=$(now)
    sp_out=$(target/release/dvfs-lab run "$SP_BENCH" "$SP_GHZ" "$SP_SCALE") \
        || fail "dvfs-lab run $SP_BENCH exited nonzero"
    t1=$(now)
    secs=$(elapsed "$t0" "$t1")
    if [ -z "$sp_best" ] || awk -v a="$secs" -v b="$sp_best" 'BEGIN { exit !(a < b) }'; then
        sp_best="$secs"
    fi
done
sp_events=$(echo "$sp_out" | awk '/events/ { print $2 }')
[ -n "$sp_events" ] || fail "could not parse dispatched-event count from dvfs-lab output"

# --- full fig3 sweep ---------------------------------------------------
# Both directions, full scale, one seed: 56 simulated points plus all six
# predictors, through the pool + memo-cache pipeline.
FIG3_SCALE=1
FIG3_JOBS=4
t0=$(now)
target/release/fig3 both "$FIG3_SCALE" 1 --jobs "$FIG3_JOBS" > /dev/null \
    || fail "fig3 sweep exited nonzero"
t1=$(now)
fig3_secs=$(elapsed "$t0" "$t1")

# --- sampled fig3 sweep ------------------------------------------------
# The same full-scale sweep on the sampled tier (default SamplingConfig):
# every point simulates only its probe + measure prefixes and
# extrapolates the rest. This row is the committed evidence for the
# sampled tier's speed target (≤ 5 s vs the exact sweep above); its
# accuracy is gated separately by ci.sh over results/sampling_error.json.
t0=$(now)
target/release/fig3 both "$FIG3_SCALE" 1 --jobs "$FIG3_JOBS" --sampling on > /dev/null \
    || fail "sampled fig3 sweep exited nonzero"
t1=$(now)
sampled_fig3_secs=$(elapsed "$t0" "$t1")

awk -v bench="$SP_BENCH" -v ghz="$SP_GHZ" -v sc="$SP_SCALE" \
    -v secs="$sp_best" -v ev="$sp_events" \
    -v f3sc="$FIG3_SCALE" -v f3j="$FIG3_JOBS" -v f3secs="$fig3_secs" \
    -v f3ssecs="$sampled_fig3_secs" 'BEGIN {
    printf "{\n"
    printf "  \"benchmark\": \"simcore\",\n"
    printf "  \"single_point\": {\n"
    printf "    \"bench\": \"%s\",\n", bench
    printf "    \"ghz\": %s,\n", ghz
    printf "    \"scale\": %s,\n", sc
    printf "    \"wall_seconds\": %s,\n", secs
    printf "    \"events\": %d,\n", ev
    printf "    \"events_per_second\": %.0f\n", ev / secs
    printf "  },\n"
    printf "  \"fig3_sweep\": {\n"
    printf "    \"scale\": %s,\n", f3sc
    printf "    \"seeds\": 1,\n"
    printf "    \"jobs\": %d,\n", f3j
    printf "    \"wall_seconds\": %s\n", f3secs
    printf "  },\n"
    printf "  \"sampled_fig3_sweep\": {\n"
    printf "    \"scale\": %s,\n", f3sc
    printf "    \"seeds\": 1,\n"
    printf "    \"jobs\": %d,\n", f3j
    printf "    \"sampling\": \"default\",\n"
    printf "    \"wall_seconds\": %s\n", f3ssecs
    printf "  }\n"
    printf "}\n"
}' > BENCH_sim.json

cat BENCH_sim.json

# --- fleet pipeline ----------------------------------------------------
MACHINES=64
SHARDS=4
ROUNDS=200
SCALE=0.02
JOBS=4

t0=$(now)
target/release/fleet "$MACHINES" "$ROUNDS" "$SCALE" 1 \
    --shards "$SHARDS" --chaos 0.5 --chaos-seed 7 --policy depburst \
    --jobs "$JOBS" > /dev/null \
    || fail "fleet benchmark exited nonzero"
t1=$(now)
fleet_secs=$(elapsed "$t0" "$t1")

# The same fleet with the thermal/power-integrity layer fully armed:
# per-machine RC thermal model + throttle ladder + overshoot breaker,
# hierarchical governance over 4 regions, and the brownout /
# aggregator-crash / stuck-sensor chaos classes on top of the legacy
# schedule. The characterization points are shared with the run above
# through the memo cache, so the delta is the round loop's thermal cost.
t0=$(now)
target/release/fleet "$MACHINES" "$ROUNDS" "$SCALE" 1 \
    --shards "$SHARDS" --chaos 0.5 --chaos-seed 7 --policy depburst \
    --regions 4 --hierarchy on --thermal on \
    --brownout 0.3 --region-crash 0.2 --sensor-stuck 0.2 \
    --jobs "$JOBS" > /dev/null \
    || fail "thermal fleet benchmark exited nonzero"
t1=$(now)
thermal_secs=$(elapsed "$t0" "$t1")

awk -v secs="$fleet_secs" -v tsecs="$thermal_secs" -v m="$MACHINES" \
    -v r="$ROUNDS" -v sh="$SHARDS" -v j="$JOBS" -v sc="$SCALE" 'BEGIN {
    printf "{\n"
    printf "  \"benchmark\": \"fleet\",\n"
    printf "  \"machines\": %d,\n", m
    printf "  \"shards\": %d,\n", sh
    printf "  \"rounds\": %d,\n", r
    printf "  \"scale\": %s,\n", sc
    printf "  \"jobs\": %d,\n", j
    printf "  \"wall_seconds\": %.3f,\n", secs
    printf "  \"machine_rounds_per_second\": %.0f,\n", m * r / secs
    printf "  \"thermal\": {\n"
    printf "    \"regions\": 4,\n"
    printf "    \"hierarchy\": true,\n"
    printf "    \"chaos\": \"legacy 0.5 + brownout 0.3 + region-crash 0.2 + sensor-stuck 0.2\",\n"
    printf "    \"wall_seconds\": %.3f,\n", tsecs
    printf "    \"machine_rounds_per_second\": %.0f,\n", m * r / tsecs
    printf "    \"overhead_pct\": %.1f\n", (tsecs / secs - 1) * 100
    printf "  }\n"
    printf "}\n"
}' > BENCH_fleet.json

cat BENCH_fleet.json
