#!/bin/bash
# Local CI gate: release build, full test suite, clippy with warnings
# denied, then a tiny-scale smoke run of every experiment binary on the
# parallel runner (2 pool workers). Run from anywhere; operates on the
# repo root.
#
# Every step is wall-clock timed so pool/cache performance regressions
# show up directly in CI logs.
set -euo pipefail
cd "$(dirname "$0")/.."

step() {
    local name="$1"
    shift
    echo "== ${name} =="
    local t0 t1
    t0=$(date +%s.%N)
    "$@"
    t1=$(date +%s.%N)
    awk -v a="$t0" -v b="$t1" -v n="$name" \
        'BEGIN { printf "== %s done in %.1fs ==\n", n, b - a }'
}

# --workspace matters: a bare `cargo build` only covers the root package
# and would leave the experiment binaries below stale.
step "build (release)" cargo build --release --workspace

step "test" cargo test -q --workspace

step "golden suite" cargo test -q -p harness --test golden

step "clippy (-D warnings)" cargo clippy --all-targets -- -D warnings

# Smoke-run every experiment binary at tiny scale: the point is driving
# the CLI + pool + cache plumbing end to end, not the numbers. Stdout is
# discarded; a nonzero exit fails CI.
SCALE=0.02
BIN=target/release
smoke() {
    local name="$1"
    shift
    step "smoke $name" eval "$* > /dev/null"
}
smoke fig1     "$BIN/fig1 $SCALE 1 --jobs 2"
smoke fig3     "$BIN/fig3 both $SCALE 1 --jobs 2"
smoke fig3-sampled "$BIN/fig3 both $SCALE 1 --jobs 2 --sampling on"
smoke fig4     "$BIN/fig4 $SCALE 1 --jobs 2"
smoke fig6     "$BIN/fig6 10 $SCALE 1 --jobs 2"
smoke fig7     "$BIN/fig7 10 $SCALE 1 500 --jobs 2"
smoke table1   "$BIN/table1 $SCALE --jobs 2"
smoke table2   "$BIN/table2"
smoke ablation "$BIN/ablation $SCALE 1 --jobs 2"
smoke percore  "$BIN/percore $SCALE 1 lusearch --jobs 2"
smoke faults   "$BIN/faults $SCALE 1 10 --jobs 2"
smoke fleet    "$BIN/fleet 4 40 $SCALE 1 --shards 2 --jobs 2"
smoke dvfs-lab "$BIN/dvfs-lab bench"

# Bench smoke + throughput floor: a tiny-scale simulator point, timed,
# with its events/second compared against the committed BENCH_sim.json
# snapshot. The floor is a HARD gate: measured throughput must reach
# DEPBURST_BENCH_REGRESSION_PCT percent (default 25) of the committed
# snapshot, or CI exits 2. The default has generous headroom — the fresh
# measurement runs at reduced scale, so per-run fixed costs make its
# events/second conservative relative to the full-scale snapshot — which
# leaves room for machine noise, not for order-of-magnitude regressions.
# Busy or slow CI machines can relax it per-run, e.g.
# DEPBURST_BENCH_REGRESSION_PCT=10 scripts/ci.sh.
bench_floor() {
    local pct="${DEPBURST_BENCH_REGRESSION_PCT:-25}"
    case "$pct" in
        ''|*[!0-9]*)
            echo "invalid DEPBURST_BENCH_REGRESSION_PCT ${pct@Q} (want an integer percent)"
            return 2
            ;;
    esac
    local t0 t1 out events secs eps snap_eps
    t0=$(date +%s.%N)
    out=$("$BIN/dvfs-lab" run lusearch 2 0.2) || {
        echo "bench smoke: dvfs-lab run exited nonzero"
        return 1
    }
    t1=$(date +%s.%N)
    events=$(echo "$out" | awk '/events/ { print $2 }')
    if [ -z "$events" ]; then
        echo "bench smoke: no dispatched-event count in dvfs-lab output"
        return 1
    fi
    secs=$(awk -v a="$t0" -v b="$t1" 'BEGIN { printf "%.3f", b - a }')
    eps=$(awk -v e="$events" -v s="$secs" 'BEGIN { printf "%.0f", e / s }')
    echo "bench smoke: ${events} events in ${secs}s (${eps} events/s)"
    if [ ! -f BENCH_sim.json ]; then
        echo "warning: no BENCH_sim.json snapshot to compare against"
        return 0
    fi
    snap_eps=$(awk -F'[ ,:]+' '/"events_per_second"/ { print $3 }' BENCH_sim.json)
    # Always leave the committed-vs-measured pair in the CI log, pass or
    # fail: the floor is useless for trend-spotting unless every run
    # records what it saw next to what was committed.
    echo "bench smoke: committed snapshot ${snap_eps:-<none>} events/s," \
         "measured ${eps} events/s (floor: ${pct}% of committed)"
    if [ -n "$snap_eps" ] && \
        awk -v a="$eps" -v b="$snap_eps" -v p="$pct" \
            'BEGIN { exit !(a * 100 < b * p) }'; then
        echo "FAIL: throughput ${eps} events/s is below ${pct}% of the committed" \
             "snapshot (${snap_eps} events/s) — regression. Rerun scripts/bench.sh" \
             "on a quiet machine to confirm, or relax the floor for this run with" \
             "DEPBURST_BENCH_REGRESSION_PCT."
        return 2
    fi
    return 0
}
step "bench smoke + throughput floor (>= ${DEPBURST_BENCH_REGRESSION_PCT:-25}% of snapshot)" bench_floor

# Resilience gates: the failure paths must be structured — a dead point
# yields a failure report and exit code 2, never a crashed sweep — and
# an interrupted run must resume byte-identically from its checkpoint
# journal. (FailureCause serializes by variant name: "Panic"/"Timeout".)

# A certain panic-point cell per benchmark: every other cell completes,
# the dead cells land in results/faults_failures.json, and the process
# exits 2.
resilience_panic() {
    rm -f results/faults_failures.json
    local rc=0
    "$BIN/faults" "$SCALE" 1 10 --jobs 2 --retries 1 --panic-point 1.0 \
        > /dev/null 2> /dev/null || rc=$?
    if [ "$rc" -ne 2 ]; then
        echo "faults --panic-point 1.0: want exit 2, got $rc"
        return 1
    fi
    grep -q '"Panic"' results/faults_failures.json || {
        echo "results/faults_failures.json lacks a Panic failure"
        return 1
    }
}
step "resilience: panic isolation" resilience_panic

# A 1 ms per-point watchdog budget: points die as structured timeouts,
# the sweep reports them, and the process exits 2.
resilience_watchdog() {
    rm -f results/fig1_failures.json
    local rc=0
    "$BIN/fig1" "$SCALE" 1 --jobs 2 --retries 0 --point-timeout 0.001 \
        > /dev/null 2> /dev/null || rc=$?
    if [ "$rc" -ne 2 ]; then
        echo "fig1 --point-timeout 0.001: want exit 2, got $rc"
        return 1
    fi
    grep -q '"Timeout"' results/fig1_failures.json || {
        echo "results/fig1_failures.json lacks a Timeout failure"
        return 1
    }
}
step "resilience: point watchdog" resilience_watchdog

# SIGINT a journaled fig3 sweep mid-run, resume it, and require the
# resumed stdout to be byte-identical to an uninterrupted run's.
resilience_resume() {
    local id="ci-resume-$$"
    local journal="results/checkpoints/${id}.jsonl"
    local out=/tmp/depburst-ci
    rm -f "$journal" "$out".*.out
    "$BIN/fig3" both 0.3 1 --jobs 2 --run-id "$id" \
        > "$out.interrupted.out" 2> /dev/null &
    local pid=$!
    sleep 3
    kill -INT "$pid" 2> /dev/null || true
    wait "$pid" || true
    if [ ! -s "$journal" ]; then
        echo "interrupted run left no checkpoint journal at $journal"
        return 1
    fi
    "$BIN/fig3" both 0.3 1 --jobs 2 --resume "$id" > "$out.resumed.out"
    "$BIN/fig3" both 0.3 1 --jobs 2 > "$out.reference.out"
    cmp "$out.resumed.out" "$out.reference.out" || {
        echo "resumed run is not byte-identical to an uninterrupted one"
        return 1
    }
    rm -f "$journal" "$out".*.out
}
step "resilience: interrupt + resume" resilience_resume

# Chaos gate: a tiny fleet under a fixed chaos seed must be
# byte-identical at --jobs 1 and --jobs 4, exit 0 even though some rows
# are partial by design (crashed machines shed traffic in-model — the
# sweep itself loses no points), and the report must show degradation
# transitions actually happened.
chaos_gate() {
    local out=/tmp/depburst-ci-fleet
    rm -f "$out".*.out
    "$BIN/fleet" 8 40 "$SCALE" 1 --shards 2 --chaos 0.5 --chaos-seed 7 \
        --policy depburst --jobs 1 > "$out.j1.out" 2> /dev/null
    "$BIN/fleet" 8 40 "$SCALE" 1 --shards 2 --chaos 0.5 --chaos-seed 7 \
        --policy depburst --jobs 4 > "$out.j4.out" 2> /dev/null
    cmp "$out.j1.out" "$out.j4.out" || {
        echo "chaos fleet is not byte-identical across --jobs 1 / --jobs 4"
        return 1
    }
    grep -q "crash-restart\|partition" results/fleet.json || {
        echo "chaos fleet report lacks degradation transitions"
        return 1
    }
    rm -f "$out".*.out
}
step "chaos gate: fleet determinism under faults" chaos_gate

# Thermal gate: the committed thermal experiment config must reproduce
# byte-identically at --jobs 1 and --jobs 4, its storm must actually
# exercise the power-integrity ladder (>= 1 emergency throttle and >= 1
# staggered black-start across the matrix), and the hierarchical
# topology must clear the SLO-retention floor (the PASS verdict). The
# characterization points come from the shared memo cache, so the 2x2
# matrix costs one characterization sweep per invocation.
thermal_gate() {
    local out=/tmp/depburst-ci-thermal
    rm -f "$out".*.out
    "$BIN/thermal" 12 160 0.02 1 --jobs 1 > "$out.j1.out" 2> /dev/null
    "$BIN/thermal" 12 160 0.02 1 --jobs 4 > "$out.j4.out" 2> /dev/null
    cmp "$out.j1.out" "$out.j4.out" || {
        echo "thermal matrix is not byte-identical across --jobs 1 / --jobs 4"
        return 1
    }
    local emer black
    emer=$(awk '/^thermal:/ { print $2 }' "$out.j1.out")
    black=$(grep -o '[0-9]\+ black-start' "$out.j1.out" | awk '{ print $1 }')
    if [ -z "$emer" ] || [ "$emer" -lt 1 ]; then
        echo "thermal storm drove no emergency throttles (want >= 1)"
        return 1
    fi
    if [ -z "$black" ] || [ "$black" -lt 1 ]; then
        echo "thermal storm drove no staggered black-starts (want >= 1)"
        return 1
    fi
    grep -q "gate PASS" "$out.j1.out" || {
        echo "thermal retention gate is not PASS — hierarchy lost its SLO floor"
        return 1
    }
    rm -f "$out".*.out
}
step "thermal gate: matrix determinism + power-integrity events" thermal_gate

# Brownout determinism gate: the fleet binary with every new chaos class
# armed (brownout, region-aggregator crash, stuck sensors) on a
# hierarchical thermal fleet must be byte-identical at --jobs 1 and
# --jobs 4 — the new fault classes draw from their own seeded streams,
# never from execution order.
brownout_gate() {
    local out=/tmp/depburst-ci-brownout
    local flags="--shards 2 --regions 3 --hierarchy on --thermal on \
        --brownout 0.6 --region-crash 0.5 --sensor-stuck 0.3 \
        --chaos 0.3 --chaos-seed 7 --policy depburst"
    rm -f "$out".*.out
    # shellcheck disable=SC2086
    "$BIN/fleet" 8 60 "$SCALE" 1 $flags --jobs 1 > "$out.j1.out" 2> /dev/null
    # shellcheck disable=SC2086
    "$BIN/fleet" 8 60 "$SCALE" 1 $flags --jobs 4 > "$out.j4.out" 2> /dev/null
    cmp "$out.j1.out" "$out.j4.out" || {
        echo "brownout fleet is not byte-identical across --jobs 1 / --jobs 4"
        return 1
    }
    grep -q '"brownout_rounds": [1-9]' results/fleet.json || {
        echo "brownout fleet report records no brownout rounds"
        return 1
    }
    rm -f "$out".*.out
}
step "brownout gate: new chaos classes deterministic" brownout_gate

# Durability gates: the storage layer must never serve corrupted bytes.
# The torture binary crash-tests a small fig3 run at a handful of VFS
# operation indices (resume must be byte-identical or fail closed with a
# structured Storage exit), then runs the checksum sabotage sweep:
# single bits flipped in a persisted cache envelope must be quarantined
# and recomputed, never served. tests/storage.rs enforces the same
# quarantine property in-process; this gate drives it through the real
# binary. The full crash-point matrix (every operation index) is the
# committed results/torture.json — regenerate with
#
#   target/release/torture
#
# after touching the vfs, cache, or checkpoint layers.
torture_gate() {
    local json=/tmp/depburst-ci-torture.json
    local rc=0
    # Run from /tmp so the smoke sweep does not clobber the committed
    # full-matrix results/torture.json evidence.
    (cd /tmp && "$OLDPWD/$BIN/torture" "$SCALE" 1 --dense 4 --stride 31 \
        --max-points 10 --bitflips 48 > /dev/null 2> /dev/null \
        && cp results/torture.json "$json") || rc=$?
    if [ "$rc" -ne 0 ]; then
        echo "torture sweep: want exit 0, got $rc"
        return 1
    fi
    grep -q '"silent_corruptions": 0' "$json" || {
        echo "torture smoke found silent corruptions (or wrote no report)"
        return 1
    }
    grep -q '"bitflips_missed": 0' "$json" || {
        echo "torture smoke served a flipped bit instead of quarantining it"
        return 1
    }
    rm -f "$json"
}
step "durability: torture smoke + bit-flip sabotage" torture_gate

# Fault-soaked runs may lose durability, never bytes: a fig3 sweep with
# every probabilistic storage fault active (over a persistent cache and
# a journal, so the injector actually sees traffic) must print exactly
# the bytes of a clean run and exit 0.
storage_identity() {
    local out=/tmp/depburst-ci-storage
    local cache=/tmp/depburst-ci-storage-cache
    local id="ci-storage-$$"
    rm -rf "$out".*.out "$cache"
    "$BIN/fig3" both "$SCALE" 1 --jobs 2 > "$out.plain.out" 2> /dev/null
    DEPBURST_CACHE="$cache" "$BIN/fig3" both "$SCALE" 1 --jobs 2 \
        --storage-faults 0.4,seed=5 --run-id "$id" > "$out.faulty.out" 2> /dev/null
    cmp "$out.plain.out" "$out.faulty.out" || {
        echo "fig3 under --storage-faults is not byte-identical to a clean run"
        return 1
    }
    rm -rf "$out".*.out "$cache" "results/checkpoints/${id}.jsonl"
}
step "durability: fault-soaked sweep identity" storage_identity

# Invariant gates: the simulator self-checks under the sanitizer-style
# monitor, and the fuzzer both stays quiet on the honest simulator and
# catches (and shrinks) a deliberately weakened invariant.

# A fixed-seed fuzz campaign over the clean simulator: 25 structured
# cases under the full monitor, zero violations, exit 0.
step "fuzz smoke (25 cases, seed 1)" \
    eval "$BIN/fuzz --seeds 25 --seed 1 --shrink > /dev/null"

# Sabotage gate: weakening counter conservation via the test-only hook
# must fire on every case, shrink to a minimal reproducer, serialize the
# violations as "Invariant" failures, and exit 2.
invariant_sabotage() {
    rm -f results/fuzz_failures.json
    local out=/tmp/depburst-ci-fuzz.out
    local rc=0
    DEPBURST_BREAK_INVARIANT=counter-conservation \
        "$BIN/fuzz" --seeds 3 --seed 42 --shrink > "$out" 2> /dev/null || rc=$?
    if [ "$rc" -ne 2 ]; then
        echo "sabotaged fuzz campaign: want exit 2, got $rc"
        return 1
    fi
    grep -q '"Invariant"' results/fuzz_failures.json || {
        echo "results/fuzz_failures.json lacks an Invariant failure"
        return 1
    }
    grep -q "shrunk reproducer:" "$out" || {
        echo "sabotaged campaign output lacks a shrunk reproducer"
        return 1
    }
    rm -f "$out"
}
step "fuzz sabotage gate" invariant_sabotage

# Fleet fuzz tier: 200 structured whole-fleet cases — governance
# topology, all chaos classes, the thermal stack — under the fleet
# invariants, zero violations, exit 0.
step "fleet fuzz smoke (200 cases, seed 1)" \
    eval "$BIN/fuzz --fleet --seeds 200 --seed 1 --shrink > /dev/null"

# Fleet sabotage gates: each of the thermal/hierarchy invariants,
# deliberately weakened via the test-only hook, must fire on the fleet
# fuzz tier, shrink to a minimal reproducer, and exit 2 — proof that the
# thermal-ceiling, throttle-monotonicity, and hierarchy-budget detectors
# are live, not vacuously green.
fleet_sabotage() {
    local inv="$1"
    rm -f results/fuzz_failures.json
    local out=/tmp/depburst-ci-fleet-fuzz.out
    local rc=0
    DEPBURST_BREAK_INVARIANT="$inv" \
        "$BIN/fuzz" --fleet --seeds 12 --seed 1 --shrink > "$out" 2> /dev/null || rc=$?
    if [ "$rc" -ne 2 ]; then
        echo "sabotaged ($inv) fleet fuzz: want exit 2, got $rc"
        return 1
    fi
    grep -q "VIOLATION \[$inv\]" "$out" || {
        echo "sabotaged ($inv) fleet fuzz fired no $inv violation"
        return 1
    }
    grep -q "shrunk reproducer:" "$out" || {
        echo "sabotaged ($inv) fleet fuzz output lacks a shrunk reproducer"
        return 1
    }
    grep -q '"Invariant"' results/fuzz_failures.json || {
        echo "results/fuzz_failures.json lacks an Invariant failure"
        return 1
    }
    rm -f "$out"
}
step "fleet sabotage gate: thermal-ceiling" fleet_sabotage thermal-ceiling
step "fleet sabotage gate: throttle-monotonicity" fleet_sabotage throttle-monotonicity
step "fleet sabotage gate: hierarchy-budget-conservation" \
    fleet_sabotage hierarchy-budget-conservation

# A full experiment sweep under the strictest monitor tier must finish
# clean AND print the exact bytes of an unmonitored run: the monitor
# observes, never perturbs.
invariant_sweep() {
    local out=/tmp/depburst-ci-inv
    rm -f "$out".*.out
    DEPBURST_INVARIANTS=full \
        "$BIN/fig3" both "$SCALE" 1 --jobs 2 > "$out.full.out"
    "$BIN/fig3" both "$SCALE" 1 --jobs 2 > "$out.plain.out"
    cmp "$out.full.out" "$out.plain.out" || {
        echo "fig3 under DEPBURST_INVARIANTS=full is not byte-identical"
        return 1
    }
    rm -f "$out".*.out
}
step "invariants: monitored fig3 sweep" invariant_sweep

# Sampled-tier invariant gate: the monitor must not perturb the sampled
# pipeline either — probe/measure sub-runs execute under the monitor, so
# a sampled sweep under the cheap and full tiers must print the exact
# bytes of the unmonitored sampled run.
invariant_sampled_sweep() {
    local out=/tmp/depburst-ci-inv-sampled
    rm -f "$out".*.out
    "$BIN/fig3" both "$SCALE" 1 --jobs 2 --sampling on > "$out.off.out"
    DEPBURST_INVARIANTS=cheap \
        "$BIN/fig3" both "$SCALE" 1 --jobs 2 --sampling on > "$out.cheap.out"
    DEPBURST_INVARIANTS=full \
        "$BIN/fig3" both "$SCALE" 1 --jobs 2 --sampling on > "$out.full.out"
    cmp "$out.off.out" "$out.cheap.out" || {
        echo "sampled fig3 under DEPBURST_INVARIANTS=cheap is not byte-identical"
        return 1
    }
    cmp "$out.off.out" "$out.full.out" || {
        echo "sampled fig3 under DEPBURST_INVARIANTS=full is not byte-identical"
        return 1
    }
    rm -f "$out".*.out
}
step "invariants: monitored sampled fig3 sweep" invariant_sampled_sweep

# Sampling accuracy-regression gate: the checked-in sampled-vs-exact
# validation report must show every workload × frequency cell within the
# accepted bound for both execution time and GC time. The report is the
# committed evidence behind the sampled tier; regenerate it with
#
#   target/release/sampling_error 1.0 3 --jobs 4
#
# after touching the extrapolator, and this gate fails loudly if the
# committed numbers regressed past the bound (or the report went missing
# or lost coverage) instead of letting every figure the sampled tier
# feeds silently degrade.
sampling_accuracy_gate() {
    local json=results/sampling_error.json
    local bound=0.02
    if [ ! -f "$json" ]; then
        echo "missing $json — run: target/release/sampling_error 1.0 3 --jobs 4"
        return 1
    fi
    local max_exec max_gc cells
    max_exec=$(awk -F'[ ,:]+' '/"max_exec_error"/ { print $3 }' "$json")
    max_gc=$(awk -F'[ ,:]+' '/"max_gc_error"/ { print $3 }' "$json")
    cells=$(grep -c '"benchmark"' "$json")
    if [ -z "$max_exec" ] || [ -z "$max_gc" ]; then
        echo "$json lacks the max_exec_error/max_gc_error summaries"
        return 1
    fi
    if [ "$cells" -lt 28 ]; then
        echo "$json covers only $cells cells (want all 7 workloads × 4 frequencies)"
        return 1
    fi
    echo "sampling accuracy: max |exec err| ${max_exec}, max |gc err| ${max_gc}" \
         "over ${cells} cells (bound ${bound})"
    awk -v e="$max_exec" -v g="$max_gc" -v b="$bound" \
        'BEGIN { exit !(e <= b && g <= b) }' || {
        echo "sampled-tier prediction error exceeds ${bound} — extrapolator regression"
        return 1
    }
}
step "sampling accuracy gate (≤ 2% vs exact goldens)" sampling_accuracy_gate

echo "ci: all green"
