#!/bin/bash
# Local CI gate: release build, full test suite, clippy with warnings
# denied. Run from anywhere; operates on the repo root.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== build (release) =="
cargo build --release

echo "== test =="
cargo test -q --workspace

echo "== clippy (-D warnings) =="
cargo clippy --all-targets -- -D warnings

echo "ci: all green"
