#!/bin/bash
# Local CI gate: release build, full test suite, clippy with warnings
# denied, then a tiny-scale smoke run of every experiment binary on the
# parallel runner (2 pool workers). Run from anywhere; operates on the
# repo root.
#
# Every step is wall-clock timed so pool/cache performance regressions
# show up directly in CI logs.
set -euo pipefail
cd "$(dirname "$0")/.."

step() {
    local name="$1"
    shift
    echo "== ${name} =="
    local t0 t1
    t0=$(date +%s.%N)
    "$@"
    t1=$(date +%s.%N)
    awk -v a="$t0" -v b="$t1" -v n="$name" \
        'BEGIN { printf "== %s done in %.1fs ==\n", n, b - a }'
}

# --workspace matters: a bare `cargo build` only covers the root package
# and would leave the experiment binaries below stale.
step "build (release)" cargo build --release --workspace

step "test" cargo test -q --workspace

step "golden suite" cargo test -q -p harness --test golden

step "clippy (-D warnings)" cargo clippy --all-targets -- -D warnings

# Smoke-run every experiment binary at tiny scale: the point is driving
# the CLI + pool + cache plumbing end to end, not the numbers. Stdout is
# discarded; a nonzero exit fails CI.
SCALE=0.02
BIN=target/release
smoke() {
    local name="$1"
    shift
    step "smoke $name" eval "$* > /dev/null"
}
smoke fig1     "$BIN/fig1 $SCALE 1 --jobs 2"
smoke fig3     "$BIN/fig3 both $SCALE 1 --jobs 2"
smoke fig4     "$BIN/fig4 $SCALE 1 --jobs 2"
smoke fig6     "$BIN/fig6 10 $SCALE 1 --jobs 2"
smoke fig7     "$BIN/fig7 10 $SCALE 1 500 --jobs 2"
smoke table1   "$BIN/table1 $SCALE --jobs 2"
smoke table2   "$BIN/table2"
smoke ablation "$BIN/ablation $SCALE 1 --jobs 2"
smoke percore  "$BIN/percore $SCALE 1 lusearch --jobs 2"
smoke faults   "$BIN/faults $SCALE 1 10 --jobs 2"
smoke dvfs-lab "$BIN/dvfs-lab bench"

echo "ci: all green"
